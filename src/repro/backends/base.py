"""The compute-backend contract.

A *backend* owns the three numerical primitives every other layer of the
reproduction is built on:

``sweep_padded``
    One stencil sweep over a ghost-padded array (Equation (1) of the
    paper) returning the updated interior.
``checksum``
    A checksum vector of a domain along one reduction axis
    (Equations (2)-(3)).
``sweep_with_checksums``
    The *fused* primitive: one sweep that also produces the checksum
    vector(s) of the freshly computed interior, mirroring the paper's
    fused kernel where the checksum is accumulated by the sweep itself
    rather than by a separate post-hoc pass over the domain.
``sweep_into`` / ``sweep_into_with_checksums``
    The *zero-copy* forms used by the double-buffered grids: the sweep
    reads one persistent padded buffer and writes the new interior
    straight into the interior block of a second padded buffer, so no
    full-domain array is allocated per iteration.  The base class
    provides a copy-based fallback (sweep to a fresh array, then copy
    into the destination interior) so a third-party backend that only
    implements ``sweep_padded`` keeps working; the built-in backends
    override it to write in place.
``step_into`` / ``step_into_with_checksums``
    One whole protected *step* of a buffer pair, **including the ghost
    refresh** of the source buffer: refresh halo, sweep into the
    destination interior and (for the fused form) accumulate the
    row/column checksums.  The base implementation simply runs
    :func:`repro.stencil.shift.refresh_ghosts` followed by
    ``sweep_into*``; a backend that *owns* its ghost refresh — e.g. a
    JIT backend whose compiled kernel fills ghost values and checksums
    in the same traversal that sweeps — overrides these and advertises
    it through :meth:`supports_fused_step`.  Either way the source
    buffer's halo holds the boundary condition afterwards, because the
    ABFT protectors read it for the Theorem-1 α/β terms.

All backends must agree numerically with the ``numpy`` reference within
the detection threshold recommended by
:func:`repro.core.thresholds.recommend_epsilon` — otherwise swapping the
backend would shift the false-positive/detection trade-off the paper
calibrates.  The equivalence is enforced by ``tests/test_backends.py``
for every registered backend.

Backends are registered with :func:`repro.backends.register_backend` and
selected through :func:`repro.backends.get_backend` (programmatically),
the ``REPRO_BACKEND`` environment variable, or the ``--backend`` CLI
flag.  See ``README.md`` ("Adding a backend") for a walkthrough.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.stencil.spec import StencilSpec

__all__ = [
    "Backend",
    "ChecksumMap",
    "interpreted_step_counts",
    "reset_interpreted_step_counts",
]

#: ``{reduce_axis: checksum_vector}`` as produced by the fused sweep.
ChecksumMap = Dict[int, np.ndarray]

#: Per-backend count of steps that took the *interpreted* path — the
#: base ``step_into*`` implementations below (separate
#: ``refresh_ghosts`` pass + sweep) rather than a backend-owned fused
#: step.  CI uses this to assert that a compiled backend never silently
#: falls back: run the suite with ``REPRO_ASSERT_COMPILED_STEPS=numba``
#: and the session hook in ``tests/conftest.py`` fails if the named
#: backend recorded any interpreted step.
_INTERPRETED_STEPS: Dict[str, int] = {}


def interpreted_step_counts() -> Dict[str, int]:
    """Snapshot of ``{backend name: interpreted step count}``."""
    return dict(_INTERPRETED_STEPS)


def reset_interpreted_step_counts() -> None:
    """Clear the interpreted-step counters (test isolation)."""
    _INTERPRETED_STEPS.clear()


def _record_interpreted_step(backend: "Backend") -> None:
    name = getattr(backend, "name", "abstract")
    _INTERPRETED_STEPS[name] = _INTERPRETED_STEPS.get(name, 0) + 1


class _BatchedSpecView:
    """Duck-typed view of a spec with a trailing zero offset appended.

    :class:`~repro.stencil.spec.StencilSpec` only models 2D/3D
    operators, but the interpreted sweeps consume nothing beyond the
    ``(offset, weight)`` iteration — so the batched interpreted path
    extends each offset with ``0`` along the run axis through this shim
    instead of constructing an (impossible) higher-dimensional spec.
    """

    __slots__ = ("_points", "ndim")

    def __init__(self, spec: StencilSpec) -> None:
        self._points = tuple(
            (tuple(offset) + (0,), weight) for offset, weight in spec
        )
        self.ndim = spec.ndim + 1

    def __iter__(self):
        return iter(self._points)


class Backend(ABC):
    """Abstract compute backend: sweep, checksum and fused sweep+checksum."""

    #: Registry name (also accepted by ``get_backend`` / ``REPRO_BACKEND``).
    name: str = "abstract"

    @abstractmethod
    def sweep_padded(
        self,
        padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply one stencil sweep to a ghost-padded array.

        Parameters
        ----------
        padded:
            Domain surrounded by ghost cells (boundary condition or halo
            data already applied).
        spec:
            The stencil operator.
        radius:
            Ghost width of ``padded`` (scalar or per axis); must be at
            least the stencil radius on every axis.
        interior_shape:
            Shape of the interior domain to update.
        constant:
            Optional per-point constant term :math:`C` (same shape as
            the interior), e.g. a heat-source/power map.
        out:
            Optional pre-allocated output array (interior shape).

        Returns
        -------
        numpy.ndarray
            The updated interior domain at step ``t+1``.
        """

    @staticmethod
    def _normalize_sweep_args(
        padded: np.ndarray,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray],
        out: Optional[np.ndarray],
    ):
        """Shared ``sweep_padded`` precondition checks.

        Returns the coerced ``(interior_shape, radius)`` pair; raises
        ``ValueError`` on shape mismatches. Backends call this first so
        validation behaviour cannot drift between implementations.
        """
        from repro.stencil.shift import normalize_radius

        interior_shape = tuple(int(n) for n in interior_shape)
        radius = normalize_radius(radius, padded.ndim)
        if out is not None and out.shape != interior_shape:
            raise ValueError(
                f"out has shape {out.shape}, expected {interior_shape}"
            )
        if constant is not None and constant.shape != interior_shape:
            raise ValueError(
                f"constant has shape {constant.shape}, expected {interior_shape}"
            )
        return interior_shape, radius

    def checksum(
        self, u: np.ndarray, axis: int, dtype: Optional[np.dtype] = None
    ) -> np.ndarray:
        """Checksum vector of ``u`` along ``axis`` (Eqs. 2-3).

        ``axis`` is 0 for the column checksum ``b`` and 1 for the row
        checksum ``a``; ``dtype`` selects the accumulation precision
        (``None`` accumulates in the domain dtype, the paper's float32
        behaviour).
        """
        from repro.core.checksums import checksum as _checksum

        return _checksum(u, axis, dtype=dtype)

    def sweep_with_checksums(
        self,
        padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        """One sweep returning the new interior *and* its checksum(s).

        The base implementation is deliberately unfused — a full sweep
        followed by one independent checksum pass per axis — so that a
        minimal backend only has to provide ``sweep_padded``.  Optimised
        backends override this to produce the checksums from the same
        traversal that computes the interior.

        Parameters
        ----------
        axes:
            Reduction axes to checksum (subset of ``(0, 1)``).
        checksum_dtype:
            Accumulation dtype of the checksums (``None`` → domain
            dtype, as in the paper's fused float32 kernel).

        Returns
        -------
        (new_interior, {axis: checksum_vector})
        """
        new = self.sweep_padded(
            padded, spec, radius, interior_shape, constant=constant, out=out
        )
        checksums: ChecksumMap = {
            int(axis): self.checksum(new, int(axis), dtype=checksum_dtype)
            for axis in axes
        }
        return new, checksums

    @staticmethod
    def _dst_interior(
        dst_padded: np.ndarray, radius, interior_shape: Sequence[int]
    ) -> np.ndarray:
        """Validated interior view of the destination padded buffer."""
        from repro.stencil.shift import interior_view, normalize_radius

        radius = normalize_radius(radius, dst_padded.ndim)
        interior_shape = tuple(int(n) for n in interior_shape)
        expected = tuple(
            n + 2 * r for n, r in zip(interior_shape, radius)
        )
        if dst_padded.shape != expected:
            raise ValueError(
                f"dst_padded has shape {dst_padded.shape}, expected {expected} "
                f"(interior {interior_shape}, radius {radius})"
            )
        return interior_view(dst_padded, radius)

    def sweep_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One sweep from ``src_padded`` into the interior of ``dst_padded``.

        This is the zero-copy primitive of the double-buffered pipeline:
        the new step is materialised inside the destination padded buffer
        (whose ghost cells are refreshed separately, before the *next*
        sweep reads it), so stepping allocates no full-domain array.

        The base implementation is the **copy-based fallback**: it runs
        ``sweep_padded`` into a fresh array and copies the result into
        the destination interior.  That is always safe — including when
        ``src_padded`` and ``dst_padded`` overlap — and keeps minimal
        third-party backends working unchanged.  Optimised backends
        override this to pass the destination interior as ``out``.

        Returns the destination interior view.
        """
        interior = self._dst_interior(dst_padded, radius, interior_shape)
        new = self.sweep_padded(
            src_padded, spec, radius, interior_shape, constant=constant
        )
        if new is not interior:
            interior[...] = new
        return interior

    def sweep_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        """Fused form of :meth:`sweep_into`: also checksum the new interior.

        The checksums are reduced from the freshly written (cache-hot)
        destination interior, exactly as ``sweep_with_checksums`` does
        for the allocating path.
        """
        interior = self.sweep_into(
            src_padded, dst_padded, spec, radius, interior_shape, constant=constant
        )
        checksums: ChecksumMap = {
            int(axis): self.checksum(interior, int(axis), dtype=checksum_dtype)
            for axis in axes
        }
        return interior, checksums

    # -- backend-owned full steps (ghost refresh + sweep [+ checksums]) -----
    def supports_fused_step(
        self, spec: StencilSpec, boundary, radius, interior_shape: Sequence[int]
    ) -> bool:
        """Whether ``step_into*`` fuses the ghost refresh into the sweep.

        ``False`` (the default) means the base implementations below run
        the separate :func:`~repro.stencil.shift.refresh_ghosts` pass
        before sweeping — still correct, just not a single traversal.
        The answer is per configuration only so a backend can report
        what it *does* for a layout; the built-in compiled backend
        generates a kernel for every layout and always answers ``True``.
        """
        return False

    #: Whether this backend generates/compiles kernels (and therefore
    #: has something to report from :meth:`compiled_kernels`).
    compiles_kernels: bool = False

    def compiled_kernels(self) -> Tuple[Dict, ...]:
        """Stats for the backend's compiled-kernel cache entries.

        Interpreted backends have none and return an empty tuple; a
        compiling backend returns one dict per generated kernel module
        (signature, codegen/warmup time, hit counts...) — surfaced by
        ``repro backends --kernels`` and the backend benchmark.
        """
        return ()

    def step_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        constant: Optional[np.ndarray] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """One full step of a buffer pair: ghost refresh + sweep.

        Unlike ``sweep_into``, the source halo is *not* assumed valid on
        entry: it is (re)filled from ``boundary`` as part of the step.
        On return the source halo is consistent with its interior — the
        protectors rely on that when interpolating checksums from the
        previous padded step.  Callers with externally filled halos
        (tile views carrying neighbour data) must keep using
        ``sweep_into``.

        ``refresh_axes`` restricts the ghost refresh to a subset of axes
        (``None`` → all).  This is the distributed-runner hook: a rank
        buffer's halo slabs along the distributed axis are ingested from
        neighbour messages *before* the step, so only the remaining
        axes' ghosts are (re)built from the boundary condition — see
        :func:`repro.stencil.shift.refresh_ghosts`.

        Returns the destination interior view.
        """
        from repro.stencil.shift import refresh_ghosts

        _record_interpreted_step(self)
        refresh_ghosts(src_padded, radius, boundary, axes=refresh_axes)
        return self.sweep_into(
            src_padded, dst_padded, spec, radius, interior_shape, constant=constant
        )

    def step_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        """Fused form of :meth:`step_into`: also checksum the new interior.

        This is the whole protected iteration as one backend-owned
        operation — the primitive a JIT backend compiles into a single
        traversal of the pair (ghost refresh, sweep and per-point
        checksum accumulation in one pass).  ``refresh_axes`` restricts
        the refresh exactly as in :meth:`step_into`.
        """
        from repro.stencil.shift import refresh_ghosts

        _record_interpreted_step(self)
        refresh_ghosts(src_padded, radius, boundary, axes=refresh_axes)
        return self.sweep_into_with_checksums(
            src_padded,
            dst_padded,
            spec,
            radius,
            interior_shape,
            axes,
            constant=constant,
            checksum_dtype=checksum_dtype,
        )

    # -- batched campaign steps: trailing run axis ---------------------------
    @staticmethod
    def _batch_geometry(
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray],
    ):
        """Shared ``batch_step_into*`` validation.

        Batched buffers are the padded single-run buffers with one
        trailing run axis appended: shape ``padded_shape + (nb,)``.
        Returns the coerced ``(radius, interior_shape, nb)``.
        """
        from repro.stencil.shift import normalize_radius, padded_shape

        interior_shape = tuple(int(n) for n in interior_shape)
        radius = normalize_radius(radius, len(interior_shape))
        expected = padded_shape(interior_shape, radius)
        if (
            src_padded.ndim != len(interior_shape) + 1
            or src_padded.shape[:-1] != tuple(expected)
        ):
            raise ValueError(
                f"batched src_padded has shape {src_padded.shape}, expected "
                f"{tuple(expected)} + (runs,) (interior {interior_shape}, "
                f"radius {radius})"
            )
        if dst_padded.shape != src_padded.shape:
            raise ValueError(
                f"batched dst_padded has shape {dst_padded.shape}, "
                f"expected {src_padded.shape}"
            )
        nb = int(src_padded.shape[-1])
        if nb < 1:
            raise ValueError(f"batch width must be >= 1, got {nb}")
        if constant is not None and constant.shape != interior_shape:
            raise ValueError(
                f"constant has shape {constant.shape}, expected "
                f"{interior_shape} (the constant is per-domain, not per-run)"
            )
        return radius, interior_shape, nb

    def batch_step_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        constant: Optional[np.ndarray] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """One full step of a whole *batch* of independent runs.

        ``src_padded``/``dst_padded`` carry a trailing run axis ``b``
        (shape ``padded_shape + (nb,)``); slot ``b`` of the batch is
        stepped exactly like :meth:`step_into` on ``[..., b]`` views —
        ghost refresh from ``boundary`` included, constant shared across
        runs — and must come out bit-identical to that single-run call.
        This is the campaign engine's stacked fast path: compiled
        backends override it with one generated ``bstep`` traversal
        (outer ``prange`` over runs); the base implementation is the
        always-correct loop over slots.

        Returns the batched destination interior view
        (``interior_shape + (nb,)``).
        """
        from repro.stencil.shift import interior_view

        radius, interior_shape, nb = self._batch_geometry(
            src_padded, dst_padded, radius, interior_shape, constant
        )
        for b in range(nb):
            self.step_into(
                src_padded[..., b],
                dst_padded[..., b],
                spec,
                radius,
                interior_shape,
                boundary,
                constant=constant,
                refresh_axes=refresh_axes,
            )
        return interior_view(dst_padded, radius + (0,))

    def batch_step_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        """Fused form of :meth:`batch_step_into`: per-run checksums too.

        The checksum map's vectors gain a trailing run axis as well
        (axis 0 of a 2D domain → shape ``(n1, nb)``), with slot ``b``
        bit-identical to the single-run checksum of run ``b``.
        """
        from repro.stencil.shift import interior_view

        radius, interior_shape, nb = self._batch_geometry(
            src_padded, dst_padded, radius, interior_shape, constant
        )
        axes = tuple(int(a) for a in axes)
        per_axis = {a: [] for a in axes}
        for b in range(nb):
            _, cs = self.step_into_with_checksums(
                src_padded[..., b],
                dst_padded[..., b],
                spec,
                radius,
                interior_shape,
                boundary,
                axes,
                constant=constant,
                checksum_dtype=checksum_dtype,
            )
            for a in axes:
                per_axis[a].append(cs[a])
        checksums: ChecksumMap = {
            a: np.stack(vs, axis=-1) for a, vs in per_axis.items()
        }
        return interior_view(dst_padded, radius + (0,)), checksums

    def _batch_step_vectorized(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        constant: Optional[np.ndarray] = None,
        refresh_axes: Optional[Sequence[int]] = None,
        axes: Optional[Sequence[int]] = None,
        checksum_dtype: Optional[np.dtype] = None,
    ):
        """Whole-batch interpreted step in one vectorised pass.

        The interpreted backends' shared ``batch_step_into*`` body: the
        batch is treated as one (ndim+1)-dimensional domain whose run
        axis has ghost width 0, so a single ``refresh_ghosts`` +
        ``sweep_into`` covers every run.  Per-slot bit-identity with the
        single-run step holds because every constituent is elementwise
        or reduces a non-batch axis: the slab fills copy slot-by-slot,
        the sweep's multiply/add sequence is the single-run order on
        each slot, and the checksum reduction never crosses the run
        axis.  With ``axes`` the per-run checksums are returned as well
        (trailing run axis).
        """
        from repro.stencil.boundary import BoundaryCondition, BoundarySpec
        from repro.stencil.shift import refresh_ghosts

        radius, interior_shape, nb = self._batch_geometry(
            src_padded, dst_padded, radius, interior_shape, constant
        )
        _record_interpreted_step(self)
        ndim = len(interior_shape)
        ext_radius = radius + (0,)
        ext_shape = interior_shape + (nb,)
        bspec = BoundarySpec.from_any(boundary, ndim)
        # The run axis has zero ghost width, so its boundary condition
        # is never applied; clamp is just a well-formed placeholder.
        ext_boundary = tuple(bspec) + (BoundaryCondition.clamp(),)
        ext_const = (
            None
            if constant is None
            else np.broadcast_to(constant[..., None], ext_shape)
        )
        refresh_ghosts(src_padded, ext_radius, ext_boundary, axes=refresh_axes)
        interior = self.sweep_into(
            src_padded,
            dst_padded,
            _BatchedSpecView(spec),
            ext_radius,
            ext_shape,
            constant=ext_const,
        )
        if axes is None:
            return interior
        checksums: ChecksumMap = {
            int(a): interior.sum(axis=int(a), dtype=checksum_dtype)
            for a in axes
        }
        return interior, checksums

    # -- temporal blocking: k fused steps per traversal ---------------------
    def _multi_step_views(
        self,
        sub_step: int,
        k: int,
        spec: StencilSpec,
        radius: Sequence[int],
        interior_shape: Sequence[int],
        external: Sequence[int],
    ):
        """Slice geometry of one blocked sub-step (trapezoid lowering).

        Sub-step ``s`` (0-based) of a k-blocked window writes an
        interior expanded by ``(k-1-s)*r`` ghost positions per side
        along every **external** axis — each sub-step consumes exactly
        the region its predecessor produced, starting from the ingested
        ``k*r``-deep halo.  Boundary (refreshed) axes keep their full
        padded extent and layout ghost width so the per-sub-step ghost
        refresh is identical to the single-step path.

        Returns ``(slices, view_radius, view_shape)`` for the sub-step's
        equal-geometry src/dst views.
        """
        spec_r = spec.radius()
        slices = []
        view_radius = []
        view_shape = []
        for a, (n, r_layout) in enumerate(zip(interior_shape, radius)):
            if a in external:
                e = (k - 1 - sub_step) * spec_r[a]
                r = spec_r[a]
                slices.append(
                    slice(r_layout - e - r, r_layout + n + e + r)
                )
                view_radius.append(r)
                view_shape.append(n + 2 * e)
            else:
                slices.append(slice(None))
                view_radius.append(r_layout)
                view_shape.append(n)
        return tuple(slices), tuple(view_radius), tuple(view_shape)

    def _validate_multi_step(
        self,
        k: int,
        spec: StencilSpec,
        radius,
        ndim: int,
        constant: Optional[np.ndarray],
        refresh_axes: Optional[Sequence[int]],
    ):
        """Shared ``multi_step_into*`` validation; returns the geometry."""
        from repro.stencil.shift import normalize_radius

        k = int(k)
        if k < 1:
            raise ValueError(f"block steps must be >= 1, got {k}")
        radius = normalize_radius(radius, ndim)
        refresh = (
            tuple(range(ndim))
            if refresh_axes is None
            else tuple(int(a) for a in refresh_axes)
        )
        external = tuple(a for a in range(ndim) if a not in refresh)
        spec_r = spec.radius()
        for a in external:
            if radius[a] < k * spec_r[a]:
                raise ValueError(
                    f"blocked window (k={k}) needs external ghost width "
                    f">= {k * spec_r[a]} along axis {a}, buffers provide "
                    f"{radius[a]}"
                )
        if k > 1 and constant is not None and external:
            raise ValueError(
                "blocked windows cannot combine a per-point constant "
                "with external axes: the interior-shaped constant has "
                "no values for the trapezoid's expanded region"
            )
        return k, radius, refresh, external

    def multi_step_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        k: int,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        constant: Optional[np.ndarray] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """``k`` fused steps of a buffer pair: the temporal-blocking primitive.

        Sub-steps ping-pong between the two padded buffers — sub-step
        ``s`` reads ``src``/``dst`` for even/odd ``s`` and writes the
        other — so the final interior lands in ``dst_padded`` when ``k``
        is odd and back in ``src_padded`` when it is even, and **both**
        buffers are clobbered.  Boundary-axis ghosts are re-refreshed
        before every sub-step exactly like ``k`` separate ``step_into``
        calls; external-axis halos must be ingested to a depth of at
        least ``k * stencil_radius`` before the call, and sub-steps
        shrink trapezoidally toward the interior.  The result is
        bit-identical to ``k`` single steps.

        The base implementation *is* those ``k`` single steps, each over
        centered sub-views implementing the trapezoid — so every backend
        supports the primitive; compiled backends override it with their
        generated ``step_k`` kernel.

        Returns the final interior view (of whichever buffer holds it).
        """
        k, radius, refresh, external = self._validate_multi_step(
            k, spec, radius, src_padded.ndim, constant, refresh_axes
        )
        interior_shape = tuple(int(n) for n in interior_shape)
        interior = None
        for s in range(k):
            cur, nxt = (
                (src_padded, dst_padded) if s % 2 == 0 else (dst_padded, src_padded)
            )
            slices, view_radius, view_shape = self._multi_step_views(
                s, k, spec, radius, interior_shape, external
            )
            interior = self.step_into(
                cur[slices],
                nxt[slices],
                spec,
                view_radius,
                view_shape,
                boundary,
                constant=constant,
                refresh_axes=refresh,
            )
        return interior

    def multi_step_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        k: int,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        """Checksum-carrying form of :meth:`multi_step_into`.

        Checksums are folded **only on the final sub-step** — the
        checksum carry: intermediate states are never checksummed,
        matching verify-every-``p`` semantics bit for bit (the returned
        vectors equal the ones ``k`` single steps would have produced on
        the last step).
        """
        k, radius, refresh, external = self._validate_multi_step(
            k, spec, radius, src_padded.ndim, constant, refresh_axes
        )
        interior_shape = tuple(int(n) for n in interior_shape)
        for s in range(k - 1):
            cur, nxt = (
                (src_padded, dst_padded) if s % 2 == 0 else (dst_padded, src_padded)
            )
            slices, view_radius, view_shape = self._multi_step_views(
                s, k, spec, radius, interior_shape, external
            )
            self.step_into(
                cur[slices],
                nxt[slices],
                spec,
                view_radius,
                view_shape,
                boundary,
                constant=constant,
                refresh_axes=refresh,
            )
        cur, nxt = (
            (src_padded, dst_padded) if (k - 1) % 2 == 0 else (dst_padded, src_padded)
        )
        return self.step_into_with_checksums(
            cur,
            nxt,
            spec,
            radius,
            interior_shape,
            boundary,
            axes,
            constant=constant,
            checksum_dtype=checksum_dtype,
            refresh_axes=refresh,
        )

    def warmup(
        self,
        spec: StencilSpec,
        boundary=None,
        dtype=np.float32,
        checksum_dtype=np.float64,
        radius=None,
        external_axes: Sequence[int] = (),
        block_steps: int = 1,
        batch_width: int = 0,
    ) -> None:
        """Prepare the backend for an operator before timing-sensitive work.

        A no-op by default.  JIT backends override this to trigger (or
        load from the on-disk cache) the compilation of every kernel the
        operator will need, so the one-off compile cost never lands
        inside a benchmark loop or a worker process mid-run.  ``radius``
        and ``external_axes`` describe the buffer layout the caller will
        step (ghost width beyond the stencil radius; distributed axes
        whose halo arrives from neighbours) so layout-specialized
        kernels can be prepared as well; ``block_steps > 1`` additionally
        prepares the temporal-blocking ``step_k`` kernels for that block
        factor, and ``batch_width > 0`` the batched campaign kernels
        (``bstep``/``bstep_cs``) at that run-axis width.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
