"""The ``fused`` backend: allocation-free sweep + in-call checksums.

Two optimisations over the ``numpy`` reference, both aimed at the
memory-bound nature of large stencil sweeps:

1. **No per-point temporaries.**  The reference's ``out += w * view``
   allocates (and page-faults) a full interior-sized temporary for every
   stencil point — 27 multi-megabyte allocations per sweep for the
   27-point 3D stencil.  This backend multiplies into one preallocated,
   thread-local scratch buffer (``np.multiply(view, w, out=scratch)``)
   and accumulates with an in-place ``np.add``; the first stencil point
   writes straight into the output, eliminating the zero-fill pass as
   well.  The operation order and rounding are identical to the
   reference, so the results are bitwise equal.

2. **Checksums from the same traversal.**  ``sweep_with_checksums``
   (inherited from :class:`~repro.backends.base.Backend`, which already
   reduces the result immediately after the sweep in the same call)
   reads the freshly written interior while it is still cache-hot.  A
   per-stencil-point incremental reduction of the scratch buffer was
   measured *slower* than one hot reduction of the result — ``k`` extra
   reduction passes versus one — so the fusion happens at call
   granularity, not per point.  That design note has since been
   revisited: the trade-off inverts once the loop is compiled, and the
   ``numba`` backend (:mod:`repro.backends.numba_backend`) now provides
   exactly the per-point fusion this paragraph defers — each computed
   value is folded into its row/column checksum partials inside the
   same compiled traversal (no re-read, no extra pass), with the ghost
   refresh fused in as well.  This backend remains the fastest
   *interpreted* implementation and the default when numba is absent.

The scratch cache is per-thread (``threading.local``) so the threaded
tile executor can sweep same-shaped tiles concurrently without races.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.stencil.shift import shifted_view
from repro.stencil.spec import StencilSpec

__all__ = ["FusedBackend"]

#: Scratch buffers cached per thread before the cache is reset (guards
#: against unbounded growth when many distinct tile shapes are swept).
_MAX_CACHED_SCRATCH = 8


class FusedBackend(Backend):
    """Optimised backend: scratch-buffer sweep, fused checksum production."""

    name = "fused"

    def __init__(self) -> None:
        self._local = threading.local()

    def _scratch(
        self, shape: Tuple[int, ...], dtype: np.dtype, slot: int = 0
    ) -> np.ndarray:
        """Per-thread persistent scratch buffer for ``shape``/``dtype``.

        ``slot`` distinguishes independent buffers of the same shape:
        slot 0 is the accumulation scratch of :meth:`sweep_padded`,
        slot 1 the contiguous output staging buffer of
        :meth:`sweep_into` (both can be live during one sweep).
        """
        cache: Optional[Dict] = getattr(self._local, "cache", None)
        if cache is None:
            cache = self._local.cache = {}
        key = (shape, np.dtype(dtype).str, slot)
        buf = cache.get(key)
        if buf is None:
            if len(cache) >= _MAX_CACHED_SCRATCH:
                cache.clear()
            buf = cache[key] = np.empty(shape, dtype=dtype)
        return buf

    def sweep_padded(
        self,
        padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        interior_shape, radius = self._normalize_sweep_args(
            padded, radius, interior_shape, constant, out
        )
        dtype = padded.dtype
        scratch = self._scratch(interior_shape, dtype)
        if out is scratch:
            # A caller recycling our own scratch as the output would be
            # overwritten mid-accumulation; give it a private buffer.
            scratch = np.empty(interior_shape, dtype=dtype)

        # ``have_out`` tracks whether ``out`` already holds a partial sum
        # (the constant term, or the first stencil point's contribution).
        have_out = False
        if constant is not None:
            if out is None:
                out = np.zeros(interior_shape, dtype=dtype)
                out += constant
            else:
                out[...] = 0
                out += constant
            have_out = True

        for offset, weight in spec:
            view = shifted_view(padded, offset, radius, interior_shape)
            w = np.asarray(weight, dtype=dtype)
            if not have_out:
                # First contribution: write straight into the output,
                # skipping both the zero-fill and the scratch round-trip.
                if out is None:
                    out = np.multiply(view, w)
                else:
                    np.multiply(view, w, out=out)
                have_out = True
            else:
                np.multiply(view, w, out=scratch)
                np.add(out, scratch, out=out)
        return out

    def sweep_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Zero-copy sweep: materialise the new step inside the destination.

        Combined with the scratch-buffer accumulation of
        :meth:`sweep_padded`, a double-buffered step performs **no**
        full-domain allocation at all — the acceptance property the
        benchmark's tracemalloc gate verifies.

        The destination interior of a padded buffer is a *strided* view
        (each row is followed by ghost cells), and NumPy's ufunc inner
        loops pay a measurable penalty accumulating into it (~30% on a
        256x1024 float32 block).  When the interior is not contiguous
        the sweep therefore accumulates into a persistent contiguous
        staging buffer and lands in the interior with one vectorised
        copy (~4% instead) — same operation order, bitwise-identical
        result, still no per-step allocation.
        """
        interior = self._dst_interior(dst_padded, radius, interior_shape)
        if np.may_share_memory(src_padded, dst_padded):
            return super().sweep_into(
                src_padded, dst_padded, spec, radius, interior_shape,
                constant=constant,
            )
        if interior.flags.c_contiguous:
            return self.sweep_padded(
                src_padded, spec, radius, interior_shape, constant=constant,
                out=interior,
            )
        staging = self._scratch(interior.shape, interior.dtype, slot=1)
        self.sweep_padded(
            src_padded, spec, radius, interior_shape, constant=constant,
            out=staging,
        )
        interior[...] = staging
        return interior

    def batch_step_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        constant: Optional[np.ndarray] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Whole-batch step in one vectorised pass over the run axis.

        The batched interior is strided, so :meth:`sweep_into` takes its
        contiguous-staging route — the same operation order as the
        strided single-run sweep, keeping each slot bitwise equal to a
        single :meth:`step_into` on that slot.
        """
        return self._batch_step_vectorized(
            src_padded, dst_padded, spec, radius, interior_shape, boundary,
            constant=constant, refresh_axes=refresh_axes,
        )

    def batch_step_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
        return self._batch_step_vectorized(
            src_padded, dst_padded, spec, radius, interior_shape, boundary,
            constant=constant, refresh_axes=refresh_axes, axes=tuple(axes),
            checksum_dtype=checksum_dtype,
        )
