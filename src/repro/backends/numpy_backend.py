"""The ``numpy`` reference backend.

This is the straightforward vectorised implementation the reproduction
started from: one full-array temporary per stencil point during the
sweep, and checksums computed by separate post-hoc passes over the new
domain (the unfused shape every optimised backend is validated against).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.stencil.shift import shifted_view
from repro.stencil.spec import StencilSpec

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    """Reference backend: allocating accumulation, unfused checksums."""

    name = "numpy"

    def sweep_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        interior = self._dst_interior(dst_padded, radius, interior_shape)
        if np.may_share_memory(src_padded, dst_padded):
            # Writing the interior while the sweep still reads the source
            # would corrupt the accumulation; take the copy-based route.
            return super().sweep_into(
                src_padded, dst_padded, spec, radius, interior_shape,
                constant=constant,
            )
        return self.sweep_padded(
            src_padded, spec, radius, interior_shape, constant=constant,
            out=interior,
        )

    def sweep_padded(
        self,
        padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        interior_shape, radius = self._normalize_sweep_args(
            padded, radius, interior_shape, constant, out
        )
        dtype = padded.dtype
        if out is None:
            out = np.zeros(interior_shape, dtype=dtype)
        else:
            out[...] = 0
        if constant is not None:
            out += constant
        for offset, weight in spec:
            view = shifted_view(padded, offset, radius, interior_shape)
            # ``out += w * view`` allocates a full-size temporary per
            # stencil point; the fused backend eliminates it with a
            # preallocated scratch buffer.
            out += np.asarray(weight, dtype=dtype) * view
        return out

    def batch_step_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        constant: Optional[np.ndarray] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Whole-batch step as one vectorised pass over the run axis."""
        return self._batch_step_vectorized(
            src_padded, dst_padded, spec, radius, interior_shape, boundary,
            constant=constant, refresh_axes=refresh_axes,
        )

    def batch_step_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
        return self._batch_step_vectorized(
            src_padded, dst_padded, spec, radius, interior_shape, boundary,
            constant=constant, refresh_axes=refresh_axes, axes=tuple(axes),
            checksum_dtype=checksum_dtype,
        )
