"""The emit pass: a :class:`~repro.backends.codegen.plan.KernelPlan` to
numba-ready Python source.

One plan becomes one self-contained module with up to five functions:

``sweep`` / ``sweep_cs``
    The fused sweep (+ per-point checksum) over trusted ghost cells.
    The spec's offset table is unrolled into straight-line multiply-adds
    (the fusion pass), accumulating in the domain dtype in the spec's
    deterministic lexicographic offset order; weights arrive as a
    pre-cast runtime vector.  The checksum variant folds every freshly
    computed value into its row and column partials exactly like the
    interpreted backends' contract: ``cs1`` is indexed by the parallel
    loop variable, ``cs0`` is merged by a parfor array reduction over
    thread-private partials.
``refresh`` / ``step`` / ``step_cs``  (step plans only)
    The halo plan materialised as straight-line slab fills — per-axis
    kind and ghost width baked in, fill values as a runtime vector —
    followed by the sweep at source/destination offset ``radius``.
    Axis ``k``'s slabs span the full padded extent of axes ``< k`` and
    of external axes, and the interior range of refreshed axes ``> k``
    (corner ownership by the highest axis), reproducing
    :func:`repro.stencil.shift.refresh_ghosts` bit for bit; the modular
    periodic mapping makes degenerate wraps (``r > n``) just another
    straight-line case.
``step_k`` / ``step_k_cs``  (blocked step plans, ``block_steps=k > 1``)
    The temporal-blocking strategy: k sub-steps unrolled into one call,
    ping-ponging between the two padded buffers (sub-step ``s`` reads
    ``src``/``dst`` for even/odd ``s`` and writes the other), each
    sub-step re-refreshing the boundary-axis ghosts of its input buffer
    and sweeping with the shared ``sweep`` body at baked offsets.
    Boundary axes keep their interior extent throughout; **external**
    axes shrink trapezoidally — sub-step ``s`` writes an interior
    expanded by ``(k-1-s)*r`` per side out of the layout's ``>= k*r``
    ghost budget, so each sub-step consumes exactly the region its
    predecessor produced and the arithmetic per point is identical to
    k separate single steps (bit-for-bit).  Checksums are folded only
    on the final sub-step (``sweep_cs`` at the exact interior extent):
    the checksum carry that matches verify-every-p semantics.
``bstep`` / ``bstep_cs``  (batched step plans, ``batch=True``)
    The batched campaign strategy: the arrays carry a trailing run axis
    ``b`` and the outer ``prange`` runs over the batch, so one
    traversal refreshes ghosts, sweeps and folds per-run checksum
    partials for every run.  Within a run the fills and accumulation
    order are the single-run ``step``/``step_cs`` bodies verbatim (with
    ``, b`` appended to each access), keeping run ``b`` bit-identical
    to a single step on slot ``b``; the per-run checksum columns land
    in trailing-axis ``(.., nb)`` arrays allocated before the run loop.

The module imports ``prange`` from :mod:`repro.backends.codegen.runtime`
and carries no decorators: the compiler applies ``numba.njit`` after
loading (or leaves the functions as plain Python when running without
numba), so the identical source serves both execution modes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.backends.codegen.plan import AxisHaloPlan, KernelPlan

__all__ = ["emit_module"]

_Term = Union[int, str]


def _sum_expr(*terms: _Term) -> str:
    """Render a sum of symbolic terms and integers, folding constants.

    ``_sum_expr("n0", 1, -1)`` → ``"n0"``; ``_sum_expr(0, "g")`` →
    ``"g"``; ``_sum_expr("x0", "sr0", -1)`` → ``"x0 + sr0 - 1"``.
    """
    symbols = [t for t in terms if isinstance(t, str)]
    const = sum(t for t in terms if isinstance(t, int))
    if not symbols:
        return str(const)
    expr = " + ".join(symbols)
    if const > 0:
        expr += f" + {const}"
    elif const < 0:
        expr += f" - {-const}"
    return expr


def _idx(parts: Sequence[str]) -> str:
    return ", ".join(parts)


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def line(self, depth: int, text: str = "") -> None:
        self.lines.append(("    " * depth + text) if text else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _emit_point_sum(
    w: _Writer,
    depth: int,
    plan: KernelPlan,
    src_base: Sequence[Sequence[_Term]],
    tail: Sequence[str] = (),
) -> None:
    """Unrolled ``acc`` accumulation over the spec's offset table.

    The constant term seeds the accumulator (matching the reference
    backends, which start from ``out += constant`` before the point
    loop), then the points accumulate in the spec's lexicographic
    order — so the rounding sequence is identical to the interpreted
    sweep and the interior comes out bit-identical.  ``tail`` appends
    extra trailing index components to every ``src`` access (the run
    axis of batched kernels); the constant is interior-shaped and never
    takes the tail.
    """
    for p, offset in enumerate(plan.offsets):
        idx = _idx(
            [
                _sum_expr(*base, o)
                for base, o in zip(src_base, offset)
            ]
            + list(tail)
        )
        if p == 0 and plan.has_const:
            loopvars = _idx([f"x{a}" for a in range(plan.ndim)])
            w.line(depth, f"acc = const[{loopvars}] + wts[0] * src[{idx}]")
        elif p == 0:
            w.line(depth, f"acc = wts[0] * src[{idx}]")
        else:
            w.line(depth, f"acc += wts[{p}] * src[{idx}]")


def _sweep_args(ndim: int, cs: bool) -> str:
    dims = range(ndim)
    args = ["src", "dst", "wts"]
    args += [f"sr{a}" for a in dims]
    args += [f"dr{a}" for a in dims]
    args += [f"n{a}" for a in dims]
    args.append("const")
    if cs:
        args.append("cs_like")
    return ", ".join(args)


def _emit_sweep(w: _Writer, plan: KernelPlan) -> None:
    ndim = plan.ndim
    dims = range(ndim)
    src_base = [(f"x{a}", f"sr{a}") for a in dims]
    dst_idx = _idx([_sum_expr(f"x{a}", f"dr{a}") for a in dims])
    w.line(0, f"def sweep({_sweep_args(ndim, cs=False)}):")
    w.line(1, "for x0 in prange(n0):")
    for a in range(1, ndim):
        w.line(a + 1, f"for x{a} in range(n{a}):")
    _emit_point_sum(w, ndim + 1, plan, src_base)
    w.line(ndim + 1, f"dst[{dst_idx}] = acc")
    w.line(0)
    w.line(0)


def _emit_sweep_cs(w: _Writer, plan: KernelPlan) -> None:
    ndim = plan.ndim
    dims = range(ndim)
    src_base = [(f"x{a}", f"sr{a}") for a in dims]
    dst_idx = _idx([_sum_expr(f"x{a}", f"dr{a}") for a in dims])
    w.line(0, f"def sweep_cs({_sweep_args(ndim, cs=True)}):")
    if ndim == 2:
        w.line(1, "cs0 = np.zeros(n1, cs_like.dtype)")
        w.line(1, "cs1 = np.zeros(n0, cs_like.dtype)")
        w.line(1, "for x0 in prange(n0):")
        w.line(2, "row = np.zeros(n1, cs_like.dtype)")
        w.line(2, "s = row[0]")
        w.line(2, "for x1 in range(n1):")
        _emit_point_sum(w, 3, plan, src_base)
        w.line(3, f"dst[{dst_idx}] = acc")
        w.line(3, "row[x1] = acc")
        w.line(3, "s += row[x1]")
        w.line(2, "cs1[x0] = s")
        w.line(2, "cs0 += row")
    else:
        w.line(1, "cs0 = np.zeros((n1, n2), cs_like.dtype)")
        w.line(1, "cs1 = np.zeros((n0, n2), cs_like.dtype)")
        w.line(1, "for x0 in prange(n0):")
        w.line(2, "part = np.zeros((n1, n2), cs_like.dtype)")
        w.line(2, "for x1 in range(n1):")
        w.line(3, "for x2 in range(n2):")
        _emit_point_sum(w, 4, plan, src_base)
        w.line(4, f"dst[{dst_idx}] = acc")
        w.line(4, "part[x1, x2] = acc")
        w.line(4, "cs1[x0, x2] += part[x1, x2]")
        w.line(2, "cs0 += part")
    w.line(1, "return cs0, cs1")
    w.line(0)
    w.line(0)


def _halo_loop_ranges(
    halo: Sequence[AxisHaloPlan], k: int
) -> List[str]:
    """Loop range expressions for the non-ghost axes of axis ``k``'s fill.

    Axes before ``k`` were already refreshed (or are external), so their
    full padded extent is spanned; refreshed axes after ``k`` contribute
    only their interior range (their slabs — the corners — are written
    later, by the higher axis), while external axes after ``k`` span
    their full extent like interior (zero-radius semantics).
    """
    ranges = []
    for j, h in enumerate(halo):
        if j == k:
            continue
        full = j < k or h.kind == "external"
        if full:
            ranges.append(f"range({_sum_expr(f'n{j}', 2 * h.radius)})")
        else:
            ranges.append(
                f"range({h.radius}, {_sum_expr(f'n{j}', h.radius)})"
                if h.radius
                else f"range(n{j})"
            )
    return ranges


def _emit_halo_fills(
    w: _Writer,
    plan: KernelPlan,
    base_depth: int,
    tail: Sequence[str] = (),
) -> bool:
    """Straight-line ghost-slab fills for every boundary axis.

    Shared body of ``refresh`` (``base_depth=1``, no tail) and the
    batched ``bstep`` family, which inlines the fills inside the run
    loop with ``tail=("b",)`` appended to every index.  Returns whether
    any fill was emitted at all.
    """
    ndim = plan.ndim
    halo = plan.halo
    assert halo is not None
    body = False
    for k, h in enumerate(halo):
        if not h.fills_ghosts:
            continue
        body = True
        r, n = h.radius, f"n{h.axis}"
        w.line(base_depth, f"# axis {h.axis} halo: {h.kind} (r={r})")
        other = [j for j in range(ndim) if j != k]
        depth = base_depth
        for j, rng in zip(other, _halo_loop_ranges(halo, k)):
            w.line(depth, f"for i{j} in {rng}:")
            depth += 1
        w.line(depth, f"for g in range({r}):")
        depth += 1

        def ghost(pos: str) -> str:
            parts = [f"i{j}" for j in range(ndim)]
            parts[k] = pos
            return _idx(parts + list(tail))

        low_pos = "g"
        high_pos = _sum_expr(r, n, "g")
        if h.kind == "clamp":
            low_src, high_src = str(r), _sum_expr(r, n, -1)
            w.line(depth, f"src[{ghost(low_pos)}] = src[{ghost(low_src)}]")
            w.line(depth, f"src[{ghost(high_pos)}] = src[{ghost(high_src)}]")
        elif h.kind == "periodic":
            low_src = f"{r} + (g - {r}) % {n}"
            high_src = f"{r} + ({n} + g) % {n}"
            w.line(depth, f"src[{ghost(low_pos)}] = src[{ghost(low_src)}]")
            w.line(depth, f"src[{ghost(high_pos)}] = src[{ghost(high_src)}]")
        else:
            w.line(depth, f"src[{ghost(low_pos)}] = fills[{k}]")
            w.line(depth, f"src[{ghost(high_pos)}] = fills[{k}]")
    return body


def _emit_refresh(w: _Writer, plan: KernelPlan) -> None:
    ndim = plan.ndim
    args = ", ".join(["src"] + [f"n{a}" for a in range(ndim)] + ["fills"])
    w.line(0, f"def refresh({args}):")
    if not _emit_halo_fills(w, plan, 1):
        w.line(1, "pass  # every axis is external or has zero ghost width")
    w.line(0)
    w.line(0)


def _emit_step(w: _Writer, plan: KernelPlan, cs: bool) -> None:
    ndim = plan.ndim
    halo = plan.halo
    assert halo is not None
    name = "step_cs" if cs else "step"
    args = ["src", "dst", "wts"] + [f"n{a}" for a in range(ndim)]
    args += ["const", "fills"]
    if cs:
        args.append("cs_like")
    w.line(0, f"def {name}({', '.join(args)}):")
    refresh_args = ", ".join(
        ["src"] + [f"n{a}" for a in range(ndim)] + ["fills"]
    )
    w.line(1, f"refresh({refresh_args})")
    radii = [str(h.radius) for h in halo]
    sweep_args = (
        ["src", "dst", "wts"]
        + radii
        + radii
        + [f"n{a}" for a in range(ndim)]
        + ["const"]
    )
    if cs:
        sweep_args.append("cs_like")
        w.line(1, f"return sweep_cs({', '.join(sweep_args)})")
    else:
        w.line(1, f"sweep({', '.join(sweep_args)})")
    w.line(0)
    w.line(0)


def _spec_radius(plan: KernelPlan) -> List[int]:
    """Per-axis stencil radius recovered from the offset table."""
    return [
        max(abs(o[a]) for o in plan.offsets) for a in range(plan.ndim)
    ]


def _emit_step_k(w: _Writer, plan: KernelPlan, cs: bool) -> None:
    """The k-step temporal-blocking kernel (see module docstring)."""
    ndim = plan.ndim
    halo = plan.halo
    assert halo is not None
    k = plan.block_steps
    assert k > 1
    radius = _spec_radius(plan)
    name = "step_k_cs" if cs else "step_k"
    args = ["src", "dst", "wts"] + [f"n{a}" for a in range(ndim)]
    args += ["const", "fills"]
    if cs:
        args.append("cs_like")
    w.line(0, f"def {name}({', '.join(args)}):")
    refresh_tail = ", ".join(
        [f"n{a}" for a in range(ndim)] + ["fills"]
    )
    bufs = ("src", "dst")
    for s in range(k):
        cur, nxt = bufs[s % 2], bufs[(s + 1) % 2]
        final = s == k - 1
        offs: List[str] = []
        exts: List[str] = []
        for h in halo:
            if h.kind == "external":
                e = (k - 1 - s) * radius[h.axis]
                offs.append(str(h.radius - e))
                exts.append(_sum_expr(f"n{h.axis}", 2 * e))
            else:
                offs.append(str(h.radius))
                exts.append(f"n{h.axis}")
        tag = " (+ checksums)" if final and cs else ""
        w.line(1, f"# sub-step {s + 1}/{k}: {cur} -> {nxt}{tag}")
        w.line(1, f"refresh({cur}, {refresh_tail})")
        sweep_args = [cur, nxt, "wts"] + offs + offs + exts + ["const"]
        if final and cs:
            sweep_args.append("cs_like")
            w.line(1, f"return sweep_cs({', '.join(sweep_args)})")
        else:
            w.line(1, f"sweep({', '.join(sweep_args)})")
    w.line(0)
    w.line(0)


def _emit_bstep(w: _Writer, plan: KernelPlan, cs: bool) -> None:
    """The batched campaign kernel: trailing run axis ``b``.

    One traversal refreshes ghosts, sweeps and (``bstep_cs``) folds
    per-run checksum partials for every run in the batch.  The outer
    ``prange`` is over runs, so each thread owns one run's slab of
    ``src``/``dst`` and its own trailing-axis checksum columns — no
    cross-thread writes.  Within one run the halo fills, the point
    accumulation order and the per-run checksum line sequence are the
    exact single-run ``step``/``step_cs`` bodies with ``, b`` appended
    to every array access (the interior-shaped constant excepted), so
    run ``b`` of a batched call is arithmetically the single-run kernel
    applied to slot ``b``.
    """
    ndim = plan.ndim
    halo = plan.halo
    assert halo is not None
    radii = [h.radius for h in halo]
    dims = range(ndim)
    name = "bstep_cs" if cs else "bstep"
    args = ["src", "dst", "wts"] + [f"n{a}" for a in dims]
    args += ["nb", "const", "fills"]
    if cs:
        args.append("cs_like")
    w.line(0, f"def {name}({', '.join(args)}):")
    if cs:
        if ndim == 2:
            w.line(1, "cs0 = np.zeros((n1, nb), cs_like.dtype)")
            w.line(1, "cs1 = np.zeros((n0, nb), cs_like.dtype)")
        else:
            w.line(1, "cs0 = np.zeros((n1, n2, nb), cs_like.dtype)")
            w.line(1, "cs1 = np.zeros((n0, n2, nb), cs_like.dtype)")
    w.line(1, "for b in prange(nb):")
    _emit_halo_fills(w, plan, 2, tail=("b",))
    src_base = [(f"x{a}", radii[a]) for a in dims]
    dst_idx = _idx(
        [_sum_expr(f"x{a}", radii[a]) for a in dims] + ["b"]
    )
    if not cs:
        w.line(2, "for x0 in range(n0):")
        for a in range(1, ndim):
            w.line(a + 2, f"for x{a} in range(n{a}):")
        _emit_point_sum(w, ndim + 2, plan, src_base, tail=("b",))
        w.line(ndim + 2, f"dst[{dst_idx}] = acc")
    elif ndim == 2:
        w.line(2, "for x0 in range(n0):")
        w.line(3, "row = np.zeros(n1, cs_like.dtype)")
        w.line(3, "s = row[0]")
        w.line(3, "for x1 in range(n1):")
        _emit_point_sum(w, 4, plan, src_base, tail=("b",))
        w.line(4, f"dst[{dst_idx}] = acc")
        w.line(4, "row[x1] = acc")
        w.line(4, "s += row[x1]")
        w.line(3, "cs1[x0, b] = s")
        w.line(3, "for x1 in range(n1):")
        w.line(4, "cs0[x1, b] += row[x1]")
    else:
        w.line(2, "for x0 in range(n0):")
        w.line(3, "part = np.zeros((n1, n2), cs_like.dtype)")
        w.line(3, "for x1 in range(n1):")
        w.line(4, "for x2 in range(n2):")
        _emit_point_sum(w, 5, plan, src_base, tail=("b",))
        w.line(5, f"dst[{dst_idx}] = acc")
        w.line(5, "part[x1, x2] = acc")
        w.line(5, "cs1[x0, x2, b] += part[x1, x2]")
        w.line(3, "for x1 in range(n1):")
        w.line(4, "for x2 in range(n2):")
        w.line(5, "cs0[x1, x2, b] += part[x1, x2]")
    if cs:
        w.line(1, "return cs0, cs1")
    w.line(0)
    w.line(0)


def emit_module(plan: KernelPlan) -> str:
    """Emit the full generated-module source for ``plan``."""
    w = _Writer()
    w.line(0, '"""Generated stencil kernels. DO NOT EDIT.')
    w.line(0)
    w.line(0, f"plan:   {plan.signature}")
    w.line(0, f"spec:   {plan.spec_signature}")
    if plan.layout_signature is not None:
        w.line(0, f"layout: {plan.layout_signature}")
    if plan.is_blocked:
        w.line(0, f"blocked: k={plan.block_steps} sub-steps per traversal")
    if plan.batch:
        w.line(0, "batched: trailing run axis b, one traversal per batch")
    w.line(0, '"""')
    w.line(0)
    w.line(0, "import numpy as np")
    w.line(0)
    w.line(0, "from repro.backends.codegen.runtime import prange")
    w.line(0)
    w.line(0, f"SIGNATURE = {plan.signature!r}")
    w.line(0, f"DIGEST = {plan.digest!r}")
    w.line(0, f"BLOCK_STEPS = {plan.block_steps}")
    if plan.batch:
        # A batched module carries only the batched pair: the single-run
        # families live in the unbatched module for the same layout, so
        # emitting them here would just double the compile cost.
        w.line(0, 'JIT_FUNCS = ("bstep", "bstep_cs")')
        w.line(0, 'PARALLEL_FUNCS = ("bstep", "bstep_cs")')
        w.line(0)
        w.line(0)
        _emit_bstep(w, plan, cs=False)
        _emit_bstep(w, plan, cs=True)
        src = w.source()
        return src.rstrip("\n") + "\n"
    funcs = ["sweep", "sweep_cs"]
    if plan.has_step:
        funcs += ["refresh", "step", "step_cs"]
    if plan.is_blocked:
        funcs += ["step_k", "step_k_cs"]
    w.line(0, f"JIT_FUNCS = {tuple(funcs)!r}")
    w.line(0, 'PARALLEL_FUNCS = ("sweep", "sweep_cs")')
    w.line(0)
    w.line(0)
    _emit_sweep(w, plan)
    _emit_sweep_cs(w, plan)
    if plan.has_step:
        _emit_refresh(w, plan)
        _emit_step(w, plan, cs=False)
        _emit_step(w, plan, cs=True)
    if plan.is_blocked:
        _emit_step_k(w, plan, cs=False)
        _emit_step_k(w, plan, cs=True)
    src = w.source()
    return src.rstrip("\n") + "\n"
