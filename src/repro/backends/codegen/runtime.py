"""Execution-environment shim for generated kernels.

Generated kernel modules import ``prange`` from here instead of from
``numba`` directly, so the *same* emitted source runs in two modes:

* with numba installed, :data:`NUMBA_JIT` is true, ``prange`` is
  ``numba.prange`` and the compiler decorates the module's functions
  with ``numba.njit`` after loading them;
* without numba, ``prange`` degrades to ``range`` and the functions run
  as plain Python over NumPy arrays — the mode the test suite uses to
  validate generated index arithmetic bit for bit on machines without
  the optional dependency.

(``numba.prange`` itself behaves like ``range`` when the enclosing
function is executed uncompiled, so a ``jit=False``
:class:`~repro.backends.codegen.compiler.KernelCompiler` is safe in
both environments.)
"""

from __future__ import annotations

__all__ = ["NUMBA_JIT", "njit", "prange"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_JIT = True
except ImportError:
    NUMBA_JIT = False

    def njit(*args, **kwargs):
        """Identity decorator standing in for ``numba.njit``."""
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco

    prange = range
