"""The kernel compiler: plan → source → loaded (optionally jitted) module.

:class:`KernelCompiler` drives the whole pipeline for one cache
directory:

1. :func:`~repro.backends.codegen.plan.plan_kernel` lowers the spec +
   layout into a :class:`~repro.backends.codegen.plan.KernelPlan`;
2. :func:`~repro.backends.codegen.emit.emit_module` renders the source;
3. the source is written to ``<cache_dir>/rk_<digest>.py`` — a *real*
   file, which is what lets ``numba.njit(cache=True)`` persist its
   compiled artifacts next to it (``__pycache__``), so worker processes
   and later runs load the binary instead of recompiling;
4. the module is imported and, in jit mode, its functions are decorated
   with ``njit`` (``parallel=True`` for the sweeps).  Without numba the
   plain-Python functions are returned as-is and run over NumPy arrays.

The digest embeds the emitter version and the full structural plan
signature, so a source file that already exists with matching content is
reused verbatim (``from_disk`` in the stats) — the cross-process /
cross-run artifact-sharing path.  Per-entry statistics (signatures,
codegen time, warmup time, hit/miss counts) back ``repro backends
--kernels`` and the benchmark's codegen report.

The process-wide compiler returned by :func:`get_compiler` honours the
``REPRO_KERNEL_CACHE_DIR`` environment variable; tests build private
instances with ``cache_dir=tmp_path`` and ``jit=False``.
"""

from __future__ import annotations

import importlib.util
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.backends.codegen import runtime
from repro.backends.codegen.emit import emit_module
from repro.backends.codegen.plan import KernelPlan, plan_kernel
from repro.stencil.doublebuffer import GridLayout
from repro.stencil.spec import StencilSpec

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CompiledKernels",
    "KernelCompiler",
    "get_compiler",
]

#: Environment variable overriding the on-disk kernel cache directory.
CACHE_DIR_ENV_VAR = "REPRO_KERNEL_CACHE_DIR"


def default_cache_dir() -> Path:
    """The on-disk cache directory the process-wide compiler uses."""
    env = os.environ.get(CACHE_DIR_ENV_VAR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "kernels"


@dataclass
class CompiledKernels:
    """One compiled (or plain-Python) kernel module plus its statistics."""

    plan: KernelPlan
    path: Path
    module: object
    jit: bool
    from_disk: bool
    codegen_ms: float
    warmup_ms: float = 0.0
    hits: int = 0

    @property
    def sweep(self):
        return self.module.sweep

    @property
    def sweep_cs(self):
        return self.module.sweep_cs

    @property
    def step(self):
        return getattr(self.module, "step", None)

    @property
    def step_cs(self):
        return getattr(self.module, "step_cs", None)

    @property
    def step_k(self):
        return getattr(self.module, "step_k", None)

    @property
    def step_k_cs(self):
        return getattr(self.module, "step_k_cs", None)

    @property
    def bstep(self):
        return getattr(self.module, "bstep", None)

    @property
    def bstep_cs(self):
        return getattr(self.module, "bstep_cs", None)

    def describe(self) -> Dict:
        """Stats entry for ``repro backends --kernels`` / the benchmark."""
        kind = "sweep"
        if self.plan.batch:
            kind = "bstep"
        elif self.plan.has_step:
            kind = "step_k" if self.plan.is_blocked else "step"
        ghost_growth = None
        if self.plan.is_blocked and self.plan.halo is not None:
            ghost_growth = {
                f"axis{h.axis}": h.radius
                for h in self.plan.halo
                if h.kind == "external"
            }
        return {
            "signature": self.plan.signature,
            "digest": self.plan.digest,
            "spec": self.plan.spec_signature,
            "layout": self.plan.layout_signature,
            "kind": kind,
            "block_steps": self.plan.block_steps,
            "ghost_growth": ghost_growth,
            "path": str(self.path),
            "jit": self.jit,
            "from_disk": self.from_disk,
            "codegen_ms": round(self.codegen_ms, 3),
            "warmup_ms": round(self.warmup_ms, 3),
            "hits": self.hits,
            "misses": 1,
        }


class KernelCompiler:
    """Compile and cache specialized kernels for spec + layout requests.

    Parameters
    ----------
    cache_dir:
        Directory holding the generated ``rk_<digest>.py`` modules (and,
        under numba, their ``__pycache__`` artifacts).  Defaults to
        ``$REPRO_KERNEL_CACHE_DIR`` or ``~/.cache/repro/kernels``.
    jit:
        Decorate the generated functions with ``numba.njit``.  Defaults
        to whether numba is importable; pass ``False`` to execute
        generated source as plain Python (the test suites do this on
        machines without numba *and* with it, to pin down the emitted
        index arithmetic independently of compilation).
    """

    def __init__(
        self, cache_dir: Optional[os.PathLike] = None, jit: Optional[bool] = None
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.jit = runtime.NUMBA_JIT if jit is None else bool(jit)
        self._entries: Dict[str, CompiledKernels] = {}

    # -- the pipeline --------------------------------------------------------
    def kernels_for(
        self,
        spec: StencilSpec,
        has_const: bool = False,
        layout: Optional[GridLayout] = None,
        block_steps: int = 1,
        batch: bool = False,
    ) -> CompiledKernels:
        """The compiled kernel set for ``spec`` (+ optional ``layout``).

        Kernels are keyed on the *structural* plan signature — offset
        table, constant-term presence, ghost widths, boundary kinds,
        the temporal block factor ``block_steps`` and the ``batch``
        flag — so specs differing only in weights, and layouts
        differing only in fill values, share one entry, while each
        requested block factor (and the batched family, keyed ``|b``)
        gets its own specialized module.
        """
        plan = plan_kernel(
            spec,
            has_const=has_const,
            layout=layout,
            block_steps=block_steps,
            batch=batch,
        )
        entry = self._entries.get(plan.signature)
        if entry is not None:
            entry.hits += 1
            return entry
        t0 = time.perf_counter()
        source = emit_module(plan)
        path = self.cache_dir / f"rk_{plan.digest}.py"
        from_disk = self._materialize(path, source)
        module = self._load(path, plan)
        if self.jit:
            self._decorate(module)
        entry = CompiledKernels(
            plan=plan,
            path=path,
            module=module,
            jit=self.jit,
            from_disk=from_disk,
            codegen_ms=(time.perf_counter() - t0) * 1e3,
        )
        self._entries[plan.signature] = entry
        return entry

    @staticmethod
    def _materialize(path: Path, source: str) -> bool:
        """Write the module source; returns whether it already existed."""
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            try:
                if path.read_text() == source:
                    return True
            except OSError:
                pass
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(source)
        os.replace(tmp, path)  # atomic: concurrent workers race benignly
        return False

    def _load(self, path: Path, plan: KernelPlan):
        name = f"repro_kernels_{plan.digest}"
        existing = sys.modules.get(name)
        if existing is not None and getattr(existing, "DIGEST", None) == plan.digest:
            return existing
        spec = importlib.util.spec_from_file_location(name, path)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot load generated kernel module {path}")
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        try:
            spec.loader.exec_module(module)
        except BaseException:
            sys.modules.pop(name, None)
            raise
        return module

    @staticmethod
    def _decorate(module) -> None:
        """Apply ``njit`` to the module's functions, in dependency order.

        ``JIT_FUNCS`` lists callees before callers (sweeps before the
        steps that invoke them), and the decorated dispatcher replaces
        the plain function *in the module namespace*, so by the time a
        caller is first compiled its global lookups resolve to compiled
        dispatchers.
        """
        from numba import njit

        parallel = set(module.PARALLEL_FUNCS)
        for fname in module.JIT_FUNCS:
            fn = getattr(module, fname)
            setattr(
                module,
                fname,
                njit(cache=True, parallel=fname in parallel)(fn),
            )

    # -- statistics ----------------------------------------------------------
    def stats(self) -> tuple:
        """Per-entry stats, newest-first construction order preserved."""
        return tuple(e.describe() for e in self._entries.values())

    def record_warmup(self, entry: CompiledKernels, ms: float) -> None:
        """Attribute warmup (first-call compile) time to an entry."""
        entry.warmup_ms += float(ms)

    def __repr__(self) -> str:
        mode = "jit" if self.jit else "python"
        return (
            f"<KernelCompiler dir={str(self.cache_dir)!r} mode={mode} "
            f"entries={len(self._entries)}>"
        )


_COMPILER: Optional[KernelCompiler] = None


def get_compiler() -> KernelCompiler:
    """The process-wide compiler (shared by backend, CLI and workers)."""
    global _COMPILER
    if _COMPILER is None:
        _COMPILER = KernelCompiler()
    return _COMPILER
