"""A tiny stencil kernel compiler: spec + layout → fused numba source.

This package replaces the numba backend's hand-written kernels with a
three-pass lowering pipeline (the ROADMAP's "stencil IR"):

1. **halo plan** (:mod:`repro.backends.codegen.plan`) — each axis's
   boundary kind (clamp, periodic — degenerate wraps included —
   fill, external/distributed) becomes an explicit ghost index-mapping
   rule, so no layout is ever declined;
2. **fusion + emit** (:mod:`repro.backends.codegen.emit`) — the spec's
   offset table is unrolled into a straight-line inner loop that also
   folds each output value into its row/column checksum partials, and
   rendered as 2D/3D ``@njit``-ready source;
3. **compile + cache** (:mod:`repro.backends.codegen.compiler`) — the
   source lands in an on-disk cache directory keyed by a canonical
   signature, is imported as a real module and decorated with
   ``njit(cache=True)`` so compiled artifacts persist across processes
   and runs.  Without numba the same generated source executes as plain
   Python, which is how its semantics are tested everywhere.
"""

from repro.backends.codegen.compiler import (
    CACHE_DIR_ENV_VAR,
    CompiledKernels,
    KernelCompiler,
    default_cache_dir,
    get_compiler,
)
from repro.backends.codegen.emit import emit_module
from repro.backends.codegen.plan import (
    CODEGEN_VERSION,
    AxisHaloPlan,
    KernelPlan,
    plan_kernel,
)
from repro.backends.codegen.runtime import NUMBA_JIT

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CODEGEN_VERSION",
    "NUMBA_JIT",
    "AxisHaloPlan",
    "CompiledKernels",
    "KernelCompiler",
    "KernelPlan",
    "default_cache_dir",
    "emit_module",
    "get_compiler",
    "plan_kernel",
]
