"""The stencil IR: kernel plans and the halo-plan lowering pass.

A :class:`KernelPlan` is the tiny intermediate representation sitting
between a :class:`~repro.stencil.spec.StencilSpec` + grid layout and the
emitted numba source:

* the **halo plan** pass (:func:`plan_kernel`) lowers each axis's
  boundary kind into an explicit index-mapping rule
  (:class:`AxisHaloPlan`) — how a ghost position along that axis maps
  onto a source position (or a fill value).  Crucially the periodic
  mapping is the exact modular tiling ``ghost g  ←  r + (g - r) mod n``,
  which equals ``numpy.pad(mode="wrap")`` for *every* ghost width —
  including the degenerate ``r > n`` wrap — and reads only interior
  positions along the axis being refreshed, so the in-place fill needs
  no special cases.  External (distributed) axes lower to "no fill, and
  later axes span my full extent", which is what lets the compiled step
  accept every external-axis ordering;
* the **fusion** information — the spec's offset table in deterministic
  lexicographic order and whether a per-point constant is folded in —
  is carried verbatim for the emit pass to unroll into the inner loop
  (weights stay runtime arguments so specs differing only in
  coefficients share a kernel).

Plans are hashable, carry a canonical :attr:`KernelPlan.signature` and
derive the content :attr:`KernelPlan.digest` that names the on-disk
generated module.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.stencil.doublebuffer import GridLayout
from repro.stencil.spec import StencilSpec

__all__ = ["CODEGEN_VERSION", "AxisHaloPlan", "KernelPlan", "plan_kernel"]

#: Bumped whenever the emitted source changes shape, so stale on-disk
#: modules from an older emitter can never be picked up by digest.
CODEGEN_VERSION = 2

#: Boundary kinds the halo plan knows how to lower.
_KINDS = ("clamp", "periodic", "fill", "external")


@dataclass(frozen=True)
class AxisHaloPlan:
    """Lowered ghost-fill rule for one axis.

    ``kind`` selects the index mapping the emit pass materialises:

    ``clamp``
        low ghost ← first interior row, high ghost ← last interior row.
    ``periodic``
        ghost ``g`` ← interior position ``r + (g - r) mod n`` (modular
        tiling; valid for any ``r``/``n`` combination, degenerate wraps
        included, and reads only interior positions of this axis).
    ``fill``
        both slabs ← the axis's runtime fill value.
    ``external``
        no fill — the slabs hold ingested halo data; axes refreshed
        after this one span its *full* padded extent (ghosts included),
        exactly like the interpreted refresh treats a zero-radius axis.
    """

    axis: int
    radius: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown halo kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.radius < 0:
            raise ValueError(f"radius must be >= 0, got {self.radius}")

    @property
    def fills_ghosts(self) -> bool:
        """Whether this axis writes any ghost slab at all."""
        return self.kind != "external" and self.radius > 0


@dataclass(frozen=True)
class KernelPlan:
    """Everything the emit pass needs to produce one kernel module.

    ``halo`` is ``None`` for sweep-only plans (ghost cells trusted as
    given — the ``sweep_padded`` family); step plans carry one
    :class:`AxisHaloPlan` per axis, in refresh order.
    """

    ndim: int
    offsets: Tuple[Tuple[int, ...], ...]
    has_const: bool
    halo: Optional[Tuple[AxisHaloPlan, ...]]
    spec_signature: str
    layout_signature: Optional[str]
    block_steps: int = 1
    batch: bool = False

    @property
    def npoints(self) -> int:
        return len(self.offsets)

    @property
    def has_step(self) -> bool:
        return self.halo is not None

    @property
    def is_blocked(self) -> bool:
        """Whether this plan fuses more than one timestep per traversal."""
        return self.block_steps > 1

    @property
    def signature(self) -> str:
        """Canonical identity of the generated module (cache key)."""
        offs = ";".join(
            ",".join(str(v) for v in o) for o in self.offsets
        )
        halo = (
            "none"
            if self.halo is None
            else ";".join(f"{h.radius}:{h.kind}" for h in self.halo)
        )
        return (
            f"v{CODEGEN_VERSION}|{self.ndim}d|offs[{offs}]"
            f"|const={int(self.has_const)}|halo[{halo}]"
            f"|k={self.block_steps}"
            # The suffix appears only on batched plans, so every
            # pre-existing signature (and on-disk digest) is unchanged.
            + ("|b" if self.batch else "")
        )

    @property
    def digest(self) -> str:
        """Content hash naming the on-disk module (``rk_<digest>.py``)."""
        return hashlib.sha256(self.signature.encode()).hexdigest()[:16]


def plan_kernel(
    spec: StencilSpec,
    has_const: bool = False,
    layout: Optional[GridLayout] = None,
    block_steps: int = 1,
    batch: bool = False,
) -> KernelPlan:
    """Lower a spec (and optionally a grid layout) into a kernel plan.

    With ``layout`` the plan also carries the halo plan for the fused
    ``step`` kernels; without it only the sweep family is planned.  The
    layout's ghost width must cover the stencil radius on every axis.

    ``block_steps=k > 1`` plans the temporal-blocking kernel family
    (``step_k``/``step_k_cs``): k sweeps fused into one traversal, with
    checksums folded only on the final sub-step.  Boundary axes are
    re-refreshed between sub-steps (their ghost width stays the stencil
    radius), while **external** axes shrink trapezoidally — sub-step
    ``s`` (0-based) writes an interior expanded by ``(k-1-s)*r`` ghost
    positions per side, so the layout's external ghost width must be at
    least ``k*r``.  A per-point constant cannot be combined with
    external axes in a blocked plan: the constant is interior-shaped
    and has no values for the expanded trapezoid region.

    ``batch=True`` plans the batched campaign kernel family
    (``bstep``/``bstep_cs``): the same halo plan, but the arrays carry
    a trailing run axis ``b`` and one traversal refreshes ghosts,
    sweeps and folds per-run checksum partials for every run in the
    batch.  A batched plan requires a layout (the whole point is the
    fused step) and cannot be combined with temporal blocking.
    """
    block_steps = int(block_steps)
    if block_steps < 1:
        raise ValueError(f"block_steps must be >= 1, got {block_steps}")
    if batch:
        if layout is None:
            raise ValueError(
                "batched plans require a grid layout: only the fused "
                "step family has a batched emission strategy"
            )
        if block_steps > 1:
            raise ValueError(
                "batched plans cannot be combined with temporal "
                "blocking (block_steps > 1)"
            )
    offsets = tuple(
        tuple(int(v) for v in o) for o in spec.offsets
    )
    halo: Optional[Tuple[AxisHaloPlan, ...]] = None
    layout_signature: Optional[str] = None
    if layout is None:
        if block_steps > 1:
            raise ValueError(
                "temporal blocking (block_steps > 1) requires a grid "
                "layout: only the fused step family can be blocked"
            )
    else:
        if layout.ndim != spec.ndim:
            raise ValueError(
                f"layout has {layout.ndim} axes, stencil has {spec.ndim}"
            )
        for r_spec, r_layout, kind, axis in zip(
            spec.radius(), layout.radius, layout.kinds, range(spec.ndim)
        ):
            if r_layout < r_spec:
                raise ValueError(
                    f"layout ghost width {r_layout} along axis {axis} is "
                    f"smaller than the stencil radius {r_spec}"
                )
            if (
                block_steps > 1
                and kind == "external"
                and r_layout < block_steps * r_spec
            ):
                raise ValueError(
                    f"blocked plan (k={block_steps}) needs external ghost "
                    f"width >= {block_steps * r_spec} along axis {axis}, "
                    f"layout provides {r_layout}"
                )
        if (
            block_steps > 1
            and has_const
            and any(kind == "external" for kind in layout.kinds)
        ):
            raise ValueError(
                "blocked plans cannot combine a per-point constant with "
                "external axes: the interior-shaped constant has no "
                "values for the trapezoid's expanded region"
            )
        halo = tuple(
            AxisHaloPlan(axis=a, radius=r, kind=kind)
            for a, (r, kind) in enumerate(zip(layout.radius, layout.kinds))
        )
        layout_signature = layout.signature()
    return KernelPlan(
        ndim=spec.ndim,
        offsets=offsets,
        has_const=bool(has_const),
        halo=halo,
        spec_signature=spec.signature(),
        layout_signature=layout_signature,
        block_steps=block_steps,
        batch=bool(batch),
    )
