"""Pluggable compute backends.

Every numerical hot path of the reproduction — the stencil sweep, the
checksum reductions and the paper's fused sweep+checksum kernel — is
routed through a :class:`~repro.backends.base.Backend`.  Two backends
ship built in:

``numpy``
    The straightforward reference implementation (one temporary per
    stencil point, post-hoc checksum passes).  Every other backend is
    validated against it.
``fused``
    The optimised default: allocation-free in-place accumulation through
    a preallocated scratch buffer, and checksums produced by the same
    call as the sweep (cache-hot reduction), mirroring the paper's fused
    float32 kernel.  Bitwise-identical results to ``numpy``.

Both built-ins also implement the zero-copy ``sweep_into`` primitive
(write the new step directly into the interior of a second persistent
padded buffer), which the double-buffered grids use to eliminate the
former per-iteration full-domain copy; backends that only provide
``sweep_padded`` fall back to sweep-then-copy transparently.

Select a backend with the ``backend=`` keyword accepted throughout the
stack (grids, sweeps, protectors, the tiled runner), the
``REPRO_BACKEND`` environment variable, or the CLI's ``--backend`` flag.
The ROADMAP's planned numba/JIT, process-parallel and GPU backends plug
into the same registry.
"""

from repro.backends.base import Backend, ChecksumMap
from repro.backends.fused import FusedBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import (
    BUILTIN_DEFAULT,
    ENV_VAR,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    set_default_backend,
)

__all__ = [
    "Backend",
    "ChecksumMap",
    "NumpyBackend",
    "FusedBackend",
    "ENV_VAR",
    "BUILTIN_DEFAULT",
    "register_backend",
    "available_backends",
    "get_backend",
    "set_default_backend",
    "default_backend_name",
]

register_backend(NumpyBackend(), aliases=("reference",))
register_backend(FusedBackend())
