"""Pluggable compute backends.

Every numerical hot path of the reproduction — the stencil sweep, the
checksum reductions and the paper's fused sweep+checksum kernel — is
routed through a :class:`~repro.backends.base.Backend`.  Two backends
ship built in:

``numpy``
    The straightforward reference implementation (one temporary per
    stencil point, post-hoc checksum passes).  Every other backend is
    validated against it.
``fused``
    The optimised default: allocation-free in-place accumulation through
    a preallocated scratch buffer, and checksums produced by the same
    call as the sweep (cache-hot reduction), mirroring the paper's fused
    float32 kernel.  Bitwise-identical results to ``numpy``.

A third backend is gated on an optional dependency:

``numba``
    JIT-compiled per-point fusion: kernels **generated** by the stencil
    kernel compiler (:mod:`repro.backends.codegen`) from the spec's
    offset table plus the grid layout, compiled with
    ``@njit(cache=True, parallel=True)``.  One traversal refreshes
    ghost cells, sweeps into the back buffer and accumulates both
    checksum vectors per point (the true fusion the ``fused`` backend's
    docstring defers to a compiled loop), and the halo plan covers
    *every* layout — boundary mixes, external-axis orderings, degenerate
    periodic wraps — so nothing ever falls back to an interpreted step.
    Registered only when ``numba`` is importable (the sole availability
    condition); otherwise it is listed as unavailable
    (``repro backends``) and selecting it raises a message explaining
    how to enable it.  ``repro backends --kernels`` lists the generated
    kernel cache.

All built-ins also implement the zero-copy ``sweep_into`` primitive
(write the new step directly into the interior of a second persistent
padded buffer), which the double-buffered grids use to eliminate the
former per-iteration full-domain copy; backends that only provide
``sweep_padded`` fall back to sweep-then-copy transparently.  Grids
drive whole iterations through the backend-owned ``step_into*``
primitives (ghost refresh included — see ``Backend.supports_fused_step``),
so a backend that fuses the refresh into its compiled sweep is used
automatically.

Select a backend with the ``backend=`` keyword accepted throughout the
stack (grids, sweeps, protectors, the tiled runner), the
``REPRO_BACKEND`` environment variable, or the CLI's ``--backend`` flag.
The ROADMAP's planned process-parallel and GPU backends plug into the
same registry.
"""

from repro.backends.base import Backend, ChecksumMap
from repro.backends.fused import FusedBackend
from repro.backends.numba_backend import NUMBA_AVAILABLE, UNAVAILABLE_REASON
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import (
    BUILTIN_DEFAULT,
    ENV_VAR,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    register_unavailable_backend,
    set_default_backend,
    unavailable_backends,
)

__all__ = [
    "Backend",
    "ChecksumMap",
    "NumpyBackend",
    "FusedBackend",
    "NUMBA_AVAILABLE",
    "ENV_VAR",
    "BUILTIN_DEFAULT",
    "register_backend",
    "register_unavailable_backend",
    "available_backends",
    "unavailable_backends",
    "get_backend",
    "set_default_backend",
    "default_backend_name",
]

register_backend(NumpyBackend(), aliases=("reference",))
register_backend(FusedBackend())
if NUMBA_AVAILABLE:
    from repro.backends.numba_backend import NumbaBackend

    __all__.append("NumbaBackend")
    register_backend(NumbaBackend())
else:
    register_unavailable_backend("numba", UNAVAILABLE_REASON)
