"""Accuracy and timing metrics used by the evaluation.

``accuracy``
    The l2-norm arithmetic error against a reference solution
    (Equation (11) of the paper).
``timing``
    Wall-clock timers and overhead computation for the execution-time
    figures.
``statistics``
    Mean/median/max and quartile summaries matching the paper's plots.
"""

from repro.metrics.accuracy import l2_error, relative_l2_error, max_abs_error
from repro.metrics.timing import Timer, time_callable, overhead_percent
from repro.metrics.statistics import (
    SummaryStats,
    summarize,
    quartile_summary,
    geometric_mean,
)

__all__ = [
    "l2_error",
    "relative_l2_error",
    "max_abs_error",
    "Timer",
    "time_callable",
    "overhead_percent",
    "SummaryStats",
    "summarize",
    "quartile_summary",
    "geometric_mean",
]
