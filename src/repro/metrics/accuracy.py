"""Accuracy metrics (Equation (11) of the paper).

The paper measures the impact of silent errors as the l2-norm of the
difference between the computed results and a reference value obtained
from an error-free single-threaded execution:

.. math::

    \\mathrm{error} = \\sqrt{\\sum_i (v^{ref}_i - v^{comp}_i)^2}
"""

from __future__ import annotations

import numpy as np

__all__ = ["l2_error", "relative_l2_error", "max_abs_error"]


def l2_error(reference: np.ndarray, computed: np.ndarray) -> float:
    """Arithmetic error: l2-norm of the element-wise difference (Eq. 11)."""
    reference = np.asarray(reference, dtype=np.float64)
    computed = np.asarray(computed, dtype=np.float64)
    if reference.shape != computed.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs computed {computed.shape}"
        )
    diff = reference - computed
    return float(np.sqrt(np.sum(diff * diff)))


def relative_l2_error(reference: np.ndarray, computed: np.ndarray) -> float:
    """l2 error normalised by the l2 norm of the reference."""
    reference = np.asarray(reference, dtype=np.float64)
    norm = float(np.sqrt(np.sum(reference * reference)))
    err = l2_error(reference, computed)
    if norm == 0.0:
        return err
    return err / norm


def max_abs_error(reference: np.ndarray, computed: np.ndarray) -> float:
    """Largest element-wise absolute difference (infinity norm)."""
    reference = np.asarray(reference, dtype=np.float64)
    computed = np.asarray(computed, dtype=np.float64)
    if reference.shape != computed.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs computed {computed.shape}"
        )
    if reference.size == 0:
        return 0.0
    return float(np.max(np.abs(reference - computed)))
