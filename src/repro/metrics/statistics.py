"""Distribution summaries matching the paper's plots.

Figure 9 reports mean/median/maximum arithmetic errors; Figure 10 shows
box plots with the interquartile range and whiskers. These helpers
compute those summaries from campaign samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

__all__ = ["SummaryStats", "summarize", "quartile_summary", "geometric_mean"]


@dataclass(frozen=True)
class SummaryStats:
    """Mean / median / extrema / spread of a sample."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    std: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
        }


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Mean/median/min/max/std of a sample (Figure 8 / Figure 9 rows)."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return SummaryStats(count=0, mean=float("nan"), median=float("nan"),
                            minimum=float("nan"), maximum=float("nan"), std=float("nan"))
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
    )


def quartile_summary(samples: Sequence[float]) -> Dict[str, float]:
    """Quartile box summary (Figure 10: Q1/median/Q3 box, whiskers to 75%)."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return {k: float("nan") for k in ("q1", "median", "q3", "whisker_low", "whisker_high")}
    q1, med, q3 = (float(q) for q in np.percentile(arr, [25.0, 50.0, 75.0]))
    # The paper's caption: boxes show the interquartile range, whiskers
    # extend to cover 75% of the data around the median (12.5 .. 87.5).
    wlo, whi = (float(q) for q in np.percentile(arr, [12.5, 87.5]))
    return {"q1": q1, "median": med, "q3": q3, "whisker_low": wlo, "whisker_high": whi}


def geometric_mean(samples: Sequence[float], floor: float = 1e-30) -> float:
    """Geometric mean with a floor to keep zero samples finite."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    arr = np.maximum(arr, floor)
    return float(np.exp(np.mean(np.log(arr))))
