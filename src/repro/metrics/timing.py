"""Wall-clock timing helpers for the execution-time experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

__all__ = ["Timer", "time_callable", "overhead_percent"]


@dataclass
class Timer:
    """A simple accumulating wall-clock timer.

    Can be used as a context manager (accumulates one interval per
    ``with`` block) or driven manually with :meth:`start`/:meth:`stop`.
    """

    elapsed: float = 0.0
    intervals: List[float] = field(default_factory=list)
    _started_at: float | None = None

    def start(self) -> "Timer":
        if self._started_at is not None:
            raise RuntimeError("timer already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("timer is not running")
        interval = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += interval
        self.intervals.append(interval)
        return interval

    def reset(self) -> None:
        self.elapsed = 0.0
        self.intervals.clear()
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def time_callable(fn: Callable[[], object]) -> Tuple[float, object]:
    """Run ``fn`` once and return ``(elapsed_seconds, result)``."""
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    return elapsed, result


def overhead_percent(protected_time: float, baseline_time: float) -> float:
    """Relative overhead of a protected run versus the unprotected baseline.

    The paper's headline claim is "less than 8% overhead compared to the
    performance of the unprotected stencil application".
    """
    if baseline_time <= 0.0:
        raise ValueError("baseline_time must be positive")
    return 100.0 * (protected_time - baseline_time) / baseline_time
