"""Stencil applications built on the library's public API.

``hotspot3d``
    NumPy port of the Rodinia HotSpot3D thermal simulation — the
    application used in the paper's evaluation (Section 5).
``jacobi``
    2D Jacobi iteration for the Laplace/Poisson equation.
``heat2d``
    2D explicit heat diffusion with localized sources (a constant term).
``advection``
    2D upwind advection — an *asymmetric* stencil that exercises the
    exact α/β boundary-correction terms of Theorem 1.
"""

from repro.apps.hotspot3d import HotSpot3DConfig, HotSpot3D, hotspot3d_stencil
from repro.apps.jacobi import JacobiConfig, build_jacobi_grid
from repro.apps.heat2d import Heat2DConfig, build_heat2d_grid
from repro.apps.advection import AdvectionConfig, build_advection_grid

__all__ = [
    "HotSpot3DConfig",
    "HotSpot3D",
    "hotspot3d_stencil",
    "JacobiConfig",
    "build_jacobi_grid",
    "Heat2DConfig",
    "build_heat2d_grid",
    "AdvectionConfig",
    "build_advection_grid",
]
