"""HotSpot3D thermal simulation (NumPy port of the Rodinia mini-app).

The paper integrates its ABFT prototypes into the HotSpot3D stencil code
of the Rodinia benchmark suite: "a widely used simulation tool to
estimate processor temperature based on an architectural floorplan and
simulated power measurements" (Section 5). HotSpot3D advances the chip
temperature field with an explicit 7-point stencil whose coefficients
derive from the thermal RC network of the chip stack:

.. code-block:: c

    tOut[c] = cc*tIn[c] + cw*tIn[w] + ce*tIn[e] + cs*tIn[s] + cn*tIn[n]
            + cb*tIn[b] + ct*tIn[t] + (dt/Cap)*power[c] + ct*amb_temp;

with clamped ("bounce-back") boundary indices — exactly the kernel shown
in Figure 2 of the paper. In the library's terms this is a
:class:`~repro.stencil.spec.StencilSpec` with seven weights plus a
per-point constant term ``C = (dt/Cap) * power + ct * amb_temp``, so the
whole application is protected by the generic ABFT machinery without any
HotSpot-specific code.

Substitution note (see DESIGN.md): the original benchmark reads the
power map and the initial temperature from trace files shipped with
Rodinia; this port synthesises equivalent inputs (uniform background
power plus a configurable number of rectangular hotspots) from a seeded
random generator, which preserves the stencil structure, the magnitude
range of the fields and therefore the behaviour of checksum-based
detection and correction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.grid import Grid3D
from repro.stencil.spec import StencilSpec

__all__ = ["HotSpot3DConfig", "HotSpot3D", "hotspot3d_stencil", "hotspot3d_coefficients"]

# Physical constants of the Rodinia HotSpot3D model.
K_SI = 100.0           #: thermal conductivity of silicon [W/(m K)]
SPEC_HEAT_SI = 1.75e6  #: volumetric specific heat of silicon [J/(m^3 K)]
FACTOR_CHIP = 0.5      #: effective capacitance factor
MAX_PD = 3.0e6         #: maximum power density [W/m^2]
PRECISION = 0.001      #: time-step precision parameter


@dataclass(frozen=True)
class HotSpot3DConfig:
    """Configuration of a HotSpot3D run.

    The defaults reproduce the paper's small tile (64x64x8); use
    ``HotSpot3DConfig.paper_large()`` for the 512x512x8 tile.
    """

    nx: int = 64
    ny: int = 64
    nz: int = 8
    t_chip: float = 0.0005      #: chip thickness [m]
    chip_height: float = 0.016  #: chip height [m]
    chip_width: float = 0.016   #: chip width [m]
    amb_temp: float = 80.0      #: ambient temperature
    dtype: str = "float32"
    #: number of synthetic rectangular hotspots in the power map
    hotspots: int = 4
    #: steady-state temperature rise over ambient produced by the uniform
    #: background power (degrees). The synthetic power map is expressed in
    #: terms of the temperature rise it sustains so that the simulation
    #: stays physical at every grid resolution.
    background_rise: float = 20.0
    #: steady-state temperature rise over ambient inside a hotspot (degrees)
    hotspot_rise: float = 80.0
    seed: int = 12345

    @classmethod
    def paper_small(cls) -> "HotSpot3DConfig":
        """The paper's 64x64x8 tile."""
        return cls(nx=64, ny=64, nz=8)

    @classmethod
    def paper_large(cls) -> "HotSpot3DConfig":
        """The paper's 512x512x8 tile."""
        return cls(nx=512, ny=512, nz=8)

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.nx, self.ny, self.nz)


def hotspot3d_coefficients(config: HotSpot3DConfig) -> dict:
    """Derive the stencil coefficients from the chip's thermal RC network.

    Follows the Rodinia HotSpot3D setup code: cell sizes, thermal
    resistances along each axis, the cell capacitance and the stable
    explicit time step.
    """
    dx = config.chip_height / config.nx
    dy = config.chip_width / config.ny
    dz = config.t_chip / config.nz

    cap = FACTOR_CHIP * SPEC_HEAT_SI * config.t_chip * dx * dy
    rx = dy / (2.0 * K_SI * config.t_chip * dx)
    ry = dx / (2.0 * K_SI * config.t_chip * dy)
    rz = dz / (K_SI * dx * dy)

    max_slope = MAX_PD / (FACTOR_CHIP * config.t_chip * SPEC_HEAT_SI)
    dt = PRECISION / max_slope

    step_div_cap = dt / cap
    ce = cw = step_div_cap / rx
    cn = cs = step_div_cap / ry
    ct = cb = step_div_cap / rz
    cc = 1.0 - (2.0 * ce + 2.0 * cn + 3.0 * ct)
    return {
        "dt": dt,
        "cap": cap,
        "rx": rx,
        "ry": ry,
        "rz": rz,
        "step_div_cap": step_div_cap,
        "ce": ce,
        "cw": cw,
        "cn": cn,
        "cs": cs,
        "ct": ct,
        "cb": cb,
        "cc": cc,
    }


def hotspot3d_stencil(config: HotSpot3DConfig) -> StencilSpec:
    """The 7-point HotSpot3D stencil as a :class:`StencilSpec`.

    Axis convention: x/west-east is axis 0, y/north-south is axis 1 and
    z/below-above (towards the heat sink) is axis 2.
    """
    c = hotspot3d_coefficients(config)
    return StencilSpec.seven_point_3d(
        center=c["cc"],
        west=c["cw"],
        east=c["ce"],
        north=c["cn"],
        south=c["cs"],
        below=c["cb"],
        above=c["ct"],
    )


def _synthetic_power_map(config: HotSpot3DConfig, rng: np.random.Generator) -> np.ndarray:
    """Synthetic power map: uniform background plus hot rectangles.

    The original benchmark reads per-cell power values from a trace file;
    here each cell's power is chosen so that, in steady state against the
    vertical coupling to ambient, it sustains a temperature rise of
    ``background_rise`` (or ``hotspot_rise`` inside a hotspot) degrees —
    i.e. ``power = rise * ct / step_div_cap``. This keeps the resulting
    temperature field bounded and realistic at every resolution while
    preserving the kernel's structure (the power only enters through the
    constant term of the sweep).
    """
    coeff = hotspot3d_coefficients(config)
    per_degree = coeff["ct"] / coeff["step_div_cap"]
    dtype = np.dtype(config.dtype)
    power = np.full(config.shape, config.background_rise * per_degree, dtype=dtype)
    for _ in range(config.hotspots):
        wx = max(1, config.nx // 8)
        wy = max(1, config.ny // 8)
        x0 = int(rng.integers(0, max(1, config.nx - wx)))
        y0 = int(rng.integers(0, max(1, config.ny - wy)))
        z0 = int(rng.integers(0, config.nz))
        power[x0 : x0 + wx, y0 : y0 + wy, z0] = config.hotspot_rise * per_degree
    return power


def _synthetic_initial_temperature(
    config: HotSpot3DConfig, rng: np.random.Generator
) -> np.ndarray:
    """Initial temperature field: near thermal equilibrium plus noise."""
    dtype = np.dtype(config.dtype)
    base = np.full(
        config.shape, config.amb_temp + config.background_rise, dtype=dtype
    )
    noise = rng.normal(0.0, 1.0, size=config.shape).astype(dtype)
    return base + noise


class HotSpot3D:
    """A configured HotSpot3D simulation.

    The instance owns the power map and initial temperature (generated
    once from the config seed) and builds fresh :class:`Grid3D` objects
    on demand, so fault-injection campaigns can restart from identical
    initial conditions for every repetition.

    Examples
    --------
    >>> app = HotSpot3D(HotSpot3DConfig(nx=32, ny=32, nz=4))
    >>> grid = app.build_grid()
    >>> grid.run(8).shape
    (32, 32, 4)
    """

    def __init__(self, config: Optional[HotSpot3DConfig] = None) -> None:
        self.config = config if config is not None else HotSpot3DConfig()
        rng = np.random.default_rng(self.config.seed)
        self.coefficients = hotspot3d_coefficients(self.config)
        self.spec = hotspot3d_stencil(self.config)
        self.power = _synthetic_power_map(self.config, rng)
        self.initial_temperature = _synthetic_initial_temperature(self.config, rng)
        dtype = np.dtype(self.config.dtype)
        # Constant term of the sweep: power heating + coupling to ambient.
        self.constant = (
            self.coefficients["step_div_cap"] * self.power
            + self.coefficients["ct"] * self.config.amb_temp
        ).astype(dtype)
        self.boundary = BoundarySpec.clamp(3)

    def build_grid(self) -> Grid3D:
        """A fresh grid initialised with this simulation's inputs."""
        return Grid3D(
            self.initial_temperature,
            self.spec,
            self.boundary,
            constant=self.constant,
            copy=True,
        )

    def reference_solution(self, iterations: int) -> np.ndarray:
        """Error-free final temperature field after ``iterations`` sweeps."""
        grid = self.build_grid()
        grid.run(iterations)
        return grid.u.copy()

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.config.shape

    @property
    def boundary_condition(self) -> BoundaryCondition:
        return self.boundary.axis(0)
