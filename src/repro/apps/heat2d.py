"""2D explicit heat diffusion with localized sources.

An explicit finite-difference discretisation of the heat equation with a
per-point source term, i.e. a five-point stencil plus a constant term —
the "localized heat source or sink" case the paper's Equation (1)
explicitly allows via :math:`C_{x,y}`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion

__all__ = ["Heat2DConfig", "build_heat2d_grid"]


@dataclass(frozen=True)
class Heat2DConfig:
    """Configuration of the 2D heat-diffusion example."""

    nx: int = 128
    ny: int = 96
    #: diffusion number alpha = kappa*dt/dx^2 (stability requires <= 0.25)
    alpha: float = 0.2
    #: number of localized heat sources
    sources: int = 3
    #: source strength added per iteration
    source_strength: float = 5.0
    #: initial background temperature
    background: float = 20.0
    dtype: str = "float32"
    seed: int = 7

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nx, self.ny)


def build_heat2d_grid(config: Heat2DConfig | None = None) -> Grid2D:
    """Fresh heat-diffusion grid with seeded random source placement."""
    config = config if config is not None else Heat2DConfig()
    rng = np.random.default_rng(config.seed)
    dtype = np.dtype(config.dtype)

    u0 = np.full(config.shape, config.background, dtype=dtype)
    u0 += rng.normal(0.0, 0.5, size=config.shape).astype(dtype)

    sources = np.zeros(config.shape, dtype=dtype)
    for _ in range(config.sources):
        x = int(rng.integers(2, max(3, config.nx - 2)))
        y = int(rng.integers(2, max(3, config.ny - 2)))
        sources[x, y] = config.source_strength

    boundary = BoundarySpec.uniform(BoundaryCondition.clamp(), 2)
    return Grid2D(u0, five_point_diffusion(config.alpha), boundary, constant=sources)
