"""2D Jacobi iteration for the Laplace equation.

The Jacobi kernel ("update each point with the average of its four
neighbours") is the introductory example the paper uses to define a
stencil (Section 3.1). The application solves the steady-state Laplace
equation on a rectangle with fixed (constant) boundary temperatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import jacobi4

__all__ = ["JacobiConfig", "build_jacobi_grid"]


@dataclass(frozen=True)
class JacobiConfig:
    """Configuration of the Jacobi/Laplace example."""

    nx: int = 128
    ny: int = 128
    #: temperature imposed outside the domain (constant boundary)
    boundary_value: float = 100.0
    #: initial interior temperature
    initial_value: float = 0.0
    #: amplitude of the random perturbation added to the initial state
    noise: float = 1.0
    dtype: str = "float32"
    seed: int = 2024

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nx, self.ny)


def build_jacobi_grid(config: JacobiConfig | None = None) -> Grid2D:
    """Fresh Jacobi grid for the given configuration.

    The same config (and seed) always produces the same initial state so
    that fault-injection repetitions are comparable.
    """
    config = config if config is not None else JacobiConfig()
    rng = np.random.default_rng(config.seed)
    dtype = np.dtype(config.dtype)
    u0 = np.full(config.shape, config.initial_value, dtype=dtype)
    if config.noise > 0.0:
        u0 += (config.noise * rng.random(config.shape)).astype(dtype)
    boundary = BoundarySpec.uniform(
        BoundaryCondition.constant(config.boundary_value), 2
    )
    return Grid2D(u0, jacobi4(), boundary)
