"""2D upwind advection — an asymmetric stencil workload.

First-order upwind advection of a scalar field by a constant velocity.
The stencil weights are *asymmetric* (only upwind neighbours appear), so
with clamp boundaries the α/β boundary-correction terms of Theorem 1 do
**not** cancel. This application exists precisely to exercise that code
path: protecting it with the simplified interpolation (Eqs. 8-9) raises
false positives, while the exact interpolation stays silent — the
ablation benchmark ``bench_ablation_boundary_terms`` quantifies this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import asymmetric_advection_2d

__all__ = ["AdvectionConfig", "build_advection_grid"]


@dataclass(frozen=True)
class AdvectionConfig:
    """Configuration of the upwind-advection example."""

    nx: int = 96
    ny: int = 96
    #: Courant numbers along x and y (cx + cy must stay below 1)
    cx: float = 0.3
    cy: float = 0.2
    #: number of Gaussian blobs in the initial condition
    blobs: int = 3
    dtype: str = "float32"
    seed: int = 99
    #: boundary kind: "clamp", "periodic" or "zero"
    boundary: str = "clamp"

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nx, self.ny)


def build_advection_grid(config: AdvectionConfig | None = None) -> Grid2D:
    """Fresh advection grid transporting a few Gaussian blobs."""
    config = config if config is not None else AdvectionConfig()
    if config.cx + config.cy >= 1.0:
        raise ValueError("cx + cy must be < 1 for upwind stability")
    rng = np.random.default_rng(config.seed)
    dtype = np.dtype(config.dtype)

    x = np.arange(config.nx)[:, None]
    y = np.arange(config.ny)[None, :]
    u0 = np.zeros(config.shape, dtype=np.float64)
    for _ in range(config.blobs):
        cx0 = rng.uniform(0.2, 0.8) * config.nx
        cy0 = rng.uniform(0.2, 0.8) * config.ny
        sigma = rng.uniform(0.03, 0.08) * min(config.nx, config.ny)
        u0 += np.exp(-((x - cx0) ** 2 + (y - cy0) ** 2) / (2.0 * sigma**2))
    u0 = (100.0 * u0).astype(dtype)

    kinds = {
        "clamp": BoundaryCondition.clamp(),
        "periodic": BoundaryCondition.periodic(),
        "zero": BoundaryCondition.zero(),
    }
    try:
        bc = kinds[config.boundary]
    except KeyError:
        raise ValueError(
            f"unknown boundary {config.boundary!r}; expected one of {sorted(kinds)}"
        ) from None
    boundary = BoundarySpec.uniform(bc, 2)
    return Grid2D(u0, asymmetric_advection_2d(config.cx, config.cy), boundary)
