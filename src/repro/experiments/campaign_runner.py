"""Campaign execution shared by the Figure 8 and Figure 9 experiments.

Both figures are produced from the same set of campaigns: for every tile
size, every method (No-ABFT / Online / Offline) is run once in an
error-free scenario and once with a single random bit-flip per run.
Figure 8 reads the execution-time statistics of those campaigns and
Figure 9 reads the arithmetic-error statistics.

The campaigns execute on a :class:`~repro.faults.engine.CampaignEngine`
(persistent workers, in-place grid reset, batched dispatch), so the
executor selected for the process (``--executor`` / ``REPRO_EXECUTOR``)
parallelises the Monte Carlo repetitions; records are bitwise-identical
to the legacy serial loop for every executor and worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.experiments.common import (
    METHODS,
    EvaluationScale,
    make_hotspot_app,
    make_protector_factory,
)
from repro.faults.campaign import CampaignConfig, CampaignResult
from repro.faults.engine import CampaignEngine

__all__ = ["SCENARIOS", "TileCampaigns", "run_tile_campaigns"]

#: The two execution scenarios of Figures 8 and 9.
SCENARIOS: Tuple[str, ...] = ("error-free", "single-bit-flip")


@dataclass
class TileCampaigns:
    """All (method, scenario) campaigns for one tile size."""

    tile_size: Tuple[int, int, int]
    iterations: int
    repetitions: int
    campaigns: Dict[Tuple[str, str], CampaignResult] = field(default_factory=dict)

    def get(self, method: str, scenario: str) -> CampaignResult:
        return self.campaigns[(method, scenario)]


def run_tile_campaigns(
    scale: EvaluationScale,
    tile: Tuple[int, int, int],
    methods: Tuple[str, ...] = METHODS,
    seed: int = 0,
    offline_kwargs: Optional[dict] = None,
    engine: Optional[CampaignEngine] = None,
) -> TileCampaigns:
    """Run the error-free and bit-flip campaigns of every method on a tile.

    The error-free reference solution is computed once and reused across
    all campaigns of the tile so that arithmetic errors are comparable.
    An ``engine`` may be shared across calls to keep one worker pool
    alive for a whole experiment; when omitted a private engine
    (following the process-wide executor selection) is created and shut
    down around the call.
    """
    iterations = scale.iterations[tile]
    repetitions = scale.repetitions[tile]
    app = make_hotspot_app(tile)
    reference = app.reference_solution(iterations)
    result = TileCampaigns(
        tile_size=tile, iterations=iterations, repetitions=repetitions
    )
    offline_kwargs = offline_kwargs or {}

    with CampaignEngine.shared(engine) as eng:
        for method in methods:
            if method == "offline-abft":
                factory = make_protector_factory(
                    method, epsilon=scale.epsilon, period=scale.period,
                    **offline_kwargs,
                )
            else:
                factory = make_protector_factory(method, epsilon=scale.epsilon)
            for scenario in SCENARIOS:
                config = CampaignConfig(
                    iterations=iterations,
                    repetitions=repetitions,
                    inject=(scenario == "single-bit-flip"),
                    seed=seed,
                )
                # Figure 8 reads these campaigns' *per-run time
                # distributions*, so every method must be timed the same
                # way: force the replay strategy (one timed run at a
                # time on persistent state) instead of letting eligible
                # methods take the stacked batch, whose per-run elapsed
                # is only the batch mean.
                campaign = eng.run(
                    app.build_grid, factory, config, reference=reference,
                    strategy="replay",
                )
                result.campaigns[(method, scenario)] = campaign
    return result
