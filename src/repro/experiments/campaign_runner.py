"""Campaign execution shared by the Figure 8 and Figure 9 experiments.

Both figures are produced from the same set of campaigns: for every tile
size, every method (No-ABFT / Online / Offline) is run once in an
error-free scenario and once with a single random bit-flip per run.
Figure 8 reads the execution-time statistics of those campaigns and
Figure 9 reads the arithmetic-error statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.experiments.common import (
    METHODS,
    EvaluationScale,
    make_hotspot_app,
    make_protector_factory,
)
from repro.faults.campaign import CampaignConfig, CampaignResult, run_campaign

__all__ = ["SCENARIOS", "TileCampaigns", "run_tile_campaigns"]

#: The two execution scenarios of Figures 8 and 9.
SCENARIOS: Tuple[str, ...] = ("error-free", "single-bit-flip")


@dataclass
class TileCampaigns:
    """All (method, scenario) campaigns for one tile size."""

    tile_size: Tuple[int, int, int]
    iterations: int
    repetitions: int
    campaigns: Dict[Tuple[str, str], CampaignResult] = field(default_factory=dict)

    def get(self, method: str, scenario: str) -> CampaignResult:
        return self.campaigns[(method, scenario)]


def run_tile_campaigns(
    scale: EvaluationScale,
    tile: Tuple[int, int, int],
    methods: Tuple[str, ...] = METHODS,
    seed: int = 0,
    offline_kwargs: Optional[dict] = None,
) -> TileCampaigns:
    """Run the error-free and bit-flip campaigns of every method on a tile.

    The error-free reference solution is computed once and reused across
    all campaigns of the tile so that arithmetic errors are comparable.
    """
    iterations = scale.iterations[tile]
    repetitions = scale.repetitions[tile]
    app = make_hotspot_app(tile)
    reference = app.reference_solution(iterations)
    result = TileCampaigns(
        tile_size=tile, iterations=iterations, repetitions=repetitions
    )
    offline_kwargs = offline_kwargs or {}

    for method in methods:
        if method == "offline-abft":
            factory = make_protector_factory(
                method, epsilon=scale.epsilon, period=scale.period, **offline_kwargs
            )
        else:
            factory = make_protector_factory(method, epsilon=scale.epsilon)
        for scenario in SCENARIOS:
            config = CampaignConfig(
                iterations=iterations,
                repetitions=repetitions,
                inject=(scenario == "single-bit-flip"),
                seed=seed,
            )
            campaign = run_campaign(
                app.build_grid, factory, config, reference=reference
            )
            result.campaigns[(method, scenario)] = campaign
    return result
