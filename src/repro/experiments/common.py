"""Shared infrastructure for the paper-reproduction experiments.

The paper's campaigns (Table 1) run 1,000 repetitions of 128 iterations
on 64x64x8 tiles and 100 repetitions of 256 iterations on 512x512x8
tiles on a Xeon node. A pure-NumPy reproduction cannot afford that on a
laptop, so every experiment is parameterised by an
:class:`EvaluationScale`:

* ``EvaluationScale.quick()`` — minutes on one core; preserves the
  qualitative shape of every figure (who wins, by what rough factor,
  where the crossovers are) and is what the benchmark suite runs.
* ``EvaluationScale.paper()`` — the published parameters, for users with
  the patience (or a compiled BLAS-class machine) to run them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.apps.hotspot3d import HotSpot3D, HotSpot3DConfig
from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection, Protector
from repro.core.thresholds import PAPER_EPSILON
from repro.stencil.grid import GridBase

__all__ = [
    "METHODS",
    "EvaluationScale",
    "MethodProtectorFactory",
    "make_hotspot_app",
    "make_protector_factory",
    "method_label",
]

#: The three methods compared throughout the paper's evaluation.
METHODS: Tuple[str, ...] = ("no-abft", "online-abft", "offline-abft")

_METHOD_LABELS = {
    "no-abft": "No ABFT",
    "online-abft": "ABFT (Online)",
    "offline-abft": "ABFT (Offline)",
}


def method_label(method: str) -> str:
    """Figure-legend label of a method key."""
    return _METHOD_LABELS.get(method, method)


@dataclass(frozen=True)
class EvaluationScale:
    """Domain sizes, iteration counts and repetition counts of a campaign.

    Attributes
    ----------
    tile_sizes:
        The 3D tile sizes evaluated (paper: 64x64x8 and 512x512x8).
    iterations:
        Stencil iterations per run, keyed by tile size.
    repetitions:
        Campaign repetitions per configuration, keyed by tile size.
    epsilon:
        Detection threshold ε (paper: 1e-5).
    period:
        Offline detection/checkpoint period Δ (paper: 16).
    detection_periods:
        The Δ sweep of Figure 11.
    bit_positions:
        The bit positions swept by Figure 10.
    bit_repetitions:
        Repetitions per bit position in Figure 10.
    """

    tile_sizes: Tuple[Tuple[int, int, int], ...]
    iterations: Dict[Tuple[int, int, int], int]
    repetitions: Dict[Tuple[int, int, int], int]
    epsilon: float = PAPER_EPSILON
    period: int = 16
    detection_periods: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    bit_positions: Tuple[int, ...] = tuple(range(32))
    bit_repetitions: int = 20
    name: str = "quick"

    @classmethod
    def quick(cls) -> "EvaluationScale":
        """Scaled-down campaign that finishes in minutes on one core."""
        small, large = (24, 24, 4), (48, 48, 8)
        return cls(
            tile_sizes=(small, large),
            iterations={small: 32, large: 48},
            repetitions={small: 6, large: 4},
            detection_periods=(1, 2, 4, 8, 16, 32),
            bit_positions=tuple(range(0, 32, 2)),
            bit_repetitions=6,
            name="quick",
        )

    @classmethod
    def smoke(cls) -> "EvaluationScale":
        """Tiny configuration used by the unit/integration tests."""
        small, large = (12, 12, 2), (16, 16, 4)
        return cls(
            tile_sizes=(small, large),
            iterations={small: 10, large: 12},
            repetitions={small: 2, large: 2},
            detection_periods=(1, 4, 8),
            bit_positions=(1, 12, 22, 27, 31),
            bit_repetitions=2,
            name="smoke",
        )

    @classmethod
    def paper(cls) -> "EvaluationScale":
        """The published campaign parameters (Table 1 of the paper)."""
        small, large = (64, 64, 8), (512, 512, 8)
        return cls(
            tile_sizes=(small, large),
            iterations={small: 128, large: 256},
            repetitions={small: 1000, large: 100},
            detection_periods=(1, 2, 4, 8, 16, 32, 64, 128),
            bit_positions=tuple(range(32)),
            bit_repetitions=1000,
            name="paper",
        )

    def primary_tile(self) -> Tuple[int, int, int]:
        """The tile used by single-tile experiments (the smaller one)."""
        return self.tile_sizes[0]


def make_hotspot_app(tile: Sequence[int], seed: int = 12345) -> HotSpot3D:
    """The HotSpot3D instance used by every experiment for a tile size."""
    nx, ny, nz = (int(v) for v in tile)
    return HotSpot3D(HotSpot3DConfig(nx=nx, ny=ny, nz=nz, seed=seed))


@dataclass(frozen=True)
class MethodProtectorFactory:
    """Picklable per-run protector factory for one evaluation method.

    The campaign engine ships factories to pool worker *processes*, so
    they must survive pickling — which closures do not.  This small
    frozen dataclass carries the method key plus its keyword arguments
    and builds the protector on call; equality/hashing come for free,
    which also lets the engine reuse worker-side campaign state across
    repeated calls with equal factories.
    """

    method: str
    kwargs: Tuple[Tuple[str, object], ...] = ()

    def __call__(self, grid: GridBase) -> Protector:
        kwargs = dict(self.kwargs)
        if self.method == "no-abft":
            return NoProtection()
        if self.method == "online-abft":
            return OnlineABFT.for_grid(grid, **kwargs)
        if self.method == "offline-abft":
            return OfflineABFT.for_grid(grid, **kwargs)
        raise ValueError(
            f"unknown method {self.method!r}; expected one of {METHODS}"
        )


def make_protector_factory(
    method: str,
    epsilon: float = PAPER_EPSILON,
    period: int = 16,
    **kwargs,
) -> MethodProtectorFactory:
    """Factory building a fresh protector of the requested method per run.

    Parameters
    ----------
    method:
        One of :data:`METHODS`.
    epsilon:
        Detection threshold for the ABFT methods.
    period:
        Detection/checkpoint period for the offline method.
    kwargs:
        Extra arguments forwarded to the protector constructor.

    Returns
    -------
    MethodProtectorFactory
        A picklable callable, usable with every campaign-engine executor
        (the process pool included).
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
    if method == "no-abft":
        call_kwargs: dict = {}
    elif method == "online-abft":
        call_kwargs = {"epsilon": epsilon, **kwargs}
    else:
        call_kwargs = {"epsilon": epsilon, "period": period, **kwargs}
    return MethodProtectorFactory(
        method=method, kwargs=tuple(sorted(call_kwargs.items()))
    )
