"""Figure 9 — mean, median and maximum arithmetic error.

The paper's Figure 9 reports, for both tile sizes and both scenarios,
the mean/median/maximum l2-norm arithmetic error (Eq. 11) of each method
relative to the error-free reference. The qualitative shape to
reproduce:

* error-free: every method stays at (numerically) zero error;
* with a single bit-flip: the unprotected run reaches enormous errors
  (bit-flips in exponent/sign bits corrupt the result beyond use), the
  Online ABFT keeps the median error small (on-the-fly correction leaves
  a small approximation residue), and the Offline ABFT cancels the error
  almost completely thanks to rollback/recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.campaign_runner import SCENARIOS, TileCampaigns, run_tile_campaigns
from repro.experiments.common import METHODS, EvaluationScale, method_label
from repro.experiments.report import format_scientific, format_table

__all__ = ["Figure9Row", "Figure9Result", "run_figure9", "format_figure9"]


@dataclass(frozen=True)
class Figure9Row:
    """One bar group of Figure 9."""

    tile_size: Tuple[int, int, int]
    scenario: str
    method: str
    mean_error: float
    median_error: float
    max_error: float
    detection_rate: float
    false_positive_rate: float


@dataclass
class Figure9Result:
    """All series of Figure 9 plus the underlying campaigns."""

    scale_name: str
    rows: List[Figure9Row] = field(default_factory=list)
    campaigns: Dict[Tuple[int, int, int], TileCampaigns] = field(default_factory=dict)

    def row(self, tile, scenario: str, method: str) -> Figure9Row:
        for r in self.rows:
            if r.tile_size == tuple(tile) and r.scenario == scenario and r.method == method:
                return r
        raise KeyError((tile, scenario, method))


def run_figure9(
    scale: EvaluationScale | None = None,
    campaigns: Dict[Tuple[int, int, int], TileCampaigns] | None = None,
) -> Figure9Result:
    """Regenerate Figure 9, optionally reusing Figure 8's campaigns."""
    scale = scale if scale is not None else EvaluationScale.quick()
    result = Figure9Result(scale_name=scale.name)
    for tile in scale.tile_sizes:
        tile_campaigns = (
            campaigns[tile] if campaigns and tile in campaigns
            else run_tile_campaigns(scale, tile)
        )
        result.campaigns[tile] = tile_campaigns
        for scenario in SCENARIOS:
            for method in METHODS:
                campaign = tile_campaigns.get(method, scenario)
                stats = campaign.error_stats()
                result.rows.append(
                    Figure9Row(
                        tile_size=tile,
                        scenario=scenario,
                        method=method,
                        mean_error=stats.mean,
                        median_error=stats.median,
                        max_error=stats.maximum,
                        detection_rate=campaign.detection_rate(),
                        false_positive_rate=campaign.false_positive_rate(),
                    )
                )
    return result


def format_figure9(result: Figure9Result) -> str:
    """Render the Figure 9 series as a text table."""
    headers = [
        "Tile", "Scenario", "Method",
        "Mean error", "Median error", "Max error", "Detection rate",
    ]
    rows = []
    for r in result.rows:
        detection = "n/a" if r.detection_rate != r.detection_rate else f"{100 * r.detection_rate:.0f}%"
        rows.append(
            [
                "x".join(str(v) for v in r.tile_size),
                r.scenario,
                method_label(r.method),
                format_scientific(r.mean_error),
                format_scientific(r.median_error),
                format_scientific(r.max_error),
                detection,
            ]
        )
    return format_table(
        headers,
        rows,
        title=f"Figure 9 — arithmetic error vs reference ({result.scale_name} scale)",
    )
