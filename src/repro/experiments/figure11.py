"""Figure 11 — impact of the detection period Δ on the Offline ABFT cost.

The paper sweeps the offline detection/checkpoint period from 1 to 128
iterations and reports the mean execution time in the error-free and
single-bit-flip scenarios. The expected shape:

* very small periods are slow (checkpointing and detection every
  iteration or two dominates);
* large periods amortise the checkpoint cost, but in the error-prone
  scenario the recomputation window grows with Δ, so the bit-flip curve
  rises again for large periods;
* a period around 8-16 iterations is the sweet spot for HotSpot3D.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.experiments.common import (
    EvaluationScale,
    make_hotspot_app,
    make_protector_factory,
)
from repro.experiments.report import format_seconds, format_table
from repro.faults.campaign import CampaignConfig
from repro.faults.engine import CampaignEngine

__all__ = ["Figure11Point", "Figure11Result", "run_figure11", "format_figure11"]


@dataclass(frozen=True)
class Figure11Point:
    """One point of a Figure 11 curve."""

    tile_size: Tuple[int, int, int]
    scenario: str
    period: int
    mean_time: float
    std_time: float
    rollbacks: int


@dataclass
class Figure11Result:
    """Both curves (error-free / bit-flip) for every evaluated tile."""

    scale_name: str
    points: List[Figure11Point] = field(default_factory=list)

    def curve(self, tile, scenario: str) -> List[Figure11Point]:
        return sorted(
            (
                p
                for p in self.points
                if p.tile_size == tuple(tile) and p.scenario == scenario
            ),
            key=lambda p: p.period,
        )

    def best_period(self, tile, scenario: str) -> int:
        """The detection period with the lowest mean time."""
        curve = self.curve(tile, scenario)
        if not curve:
            raise KeyError((tile, scenario))
        return min(curve, key=lambda p: p.mean_time).period


def run_figure11(
    scale: EvaluationScale | None = None,
    tiles: Tuple[Tuple[int, int, int], ...] | None = None,
    engine: CampaignEngine | None = None,
) -> Figure11Result:
    """Regenerate Figure 11 at the requested scale.

    Every (period, scenario) campaign runs on one shared
    :class:`CampaignEngine`; the offline protector replays on a
    persistent worker-owned grid that is reset in place between runs
    (the checkpoint/rollback state makes the offline method ineligible
    for the stacked fast path, but the per-run construction cost still
    disappears).
    """
    scale = scale if scale is not None else EvaluationScale.quick()
    tiles = tiles if tiles is not None else (scale.primary_tile(),)
    result = Figure11Result(scale_name=scale.name)
    with CampaignEngine.shared(engine) as eng:
        for tile in tiles:
            iterations = scale.iterations[tile]
            repetitions = scale.repetitions[tile]
            app = make_hotspot_app(tile)
            reference = app.reference_solution(iterations)
            for period in scale.detection_periods:
                if period > iterations:
                    continue
                factory = make_protector_factory(
                    "offline-abft", epsilon=scale.epsilon, period=period
                )
                for scenario, inject in (
                    ("error-free", False), ("single-bit-flip", True)
                ):
                    config = CampaignConfig(
                        iterations=iterations,
                        repetitions=repetitions,
                        inject=inject,
                        seed=500 + period,
                    )
                    campaign = eng.run(
                        app.build_grid, factory, config, reference=reference
                    )
                    stats = campaign.time_stats()
                    result.points.append(
                        Figure11Point(
                            tile_size=tile,
                            scenario=scenario,
                            period=period,
                            mean_time=stats.mean,
                            std_time=stats.std,
                            rollbacks=campaign.total_rollbacks(),
                        )
                    )
    return result


def format_figure11(result: Figure11Result) -> str:
    """Render the Figure 11 curves as a text table."""
    headers = ["Tile", "Scenario", "Period Δ", "Mean time", "Std", "Rollbacks"]
    rows = []
    for p in sorted(result.points, key=lambda p: (p.tile_size, p.scenario, p.period)):
        rows.append(
            [
                "x".join(str(v) for v in p.tile_size),
                p.scenario,
                str(p.period),
                format_seconds(p.mean_time),
                format_seconds(p.std_time),
                str(p.rollbacks),
            ]
        )
    return format_table(
        headers,
        rows,
        title=f"Figure 11 — Offline ABFT vs detection period ({result.scale_name} scale)",
    )
