"""Experiment harnesses reproducing the paper's tables and figures.

Each module regenerates one published artefact:

=================  =========================================================
Module             Paper artefact
=================  =========================================================
``table1``         Table 1 — experimental parameters
``figure8``        Figure 8 — mean execution time, error-free vs. bit-flip
``figure9``        Figure 9 — mean/median/max arithmetic error
``figure10``       Figure 10 — arithmetic error vs. bit-flip position
``figure11``       Figure 11 — execution time vs. detection period Δ
``sensitivity``    Section 2/3.4 claim — detectable error magnitude and
                   false positives, ABFT vs. spatial-interpolation detector
=================  =========================================================

Every experiment accepts an :class:`~repro.experiments.common.EvaluationScale`
so that the same code runs both a minutes-long scaled-down campaign (the
default, used by the benchmark suite) and the paper's full parameters
(``EvaluationScale.paper()``).
"""

from repro.experiments.common import (
    EvaluationScale,
    METHODS,
    MethodProtectorFactory,
    make_protector_factory,
)
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.figure8 import run_figure8, format_figure8
from repro.experiments.figure9 import run_figure9, format_figure9
from repro.experiments.figure10 import run_figure10, format_figure10
from repro.experiments.figure11 import run_figure11, format_figure11
from repro.experiments.sensitivity import run_sensitivity, format_sensitivity

__all__ = [
    "EvaluationScale",
    "METHODS",
    "MethodProtectorFactory",
    "make_protector_factory",
    "run_table1",
    "format_table1",
    "run_figure8",
    "format_figure8",
    "run_figure9",
    "format_figure9",
    "run_figure10",
    "format_figure10",
    "run_figure11",
    "format_figure11",
    "run_sensitivity",
    "format_sensitivity",
]
