"""Figure 8 — mean execution time of the three methods.

The paper's Figure 8 shows, for tiles of 64x64x8 (a) and 512x512x8 (b),
the mean execution time and standard deviation of the No-ABFT, Online
ABFT and Offline ABFT runs, both in an error-free scenario and with a
single random bit-flip injected during execution. The headline claims
it supports are:

* in the error-free scenario both ABFT variants cost less than ~8 %
  over the unprotected run and are close to each other;
* with a single bit-flip the Offline variant becomes noticeably slower
  (rollback + recomputation of the detection window) while the Online
  variant's cost is essentially unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.campaign_runner import SCENARIOS, TileCampaigns, run_tile_campaigns
from repro.experiments.common import METHODS, EvaluationScale, method_label
from repro.experiments.report import format_seconds, format_table
from repro.metrics.timing import overhead_percent

__all__ = ["Figure8Row", "Figure8Result", "run_figure8", "format_figure8"]


@dataclass(frozen=True)
class Figure8Row:
    """One bar of Figure 8: a (tile, scenario, method) execution time."""

    tile_size: Tuple[int, int, int]
    scenario: str
    method: str
    mean_time: float
    std_time: float
    overhead_vs_baseline: float


@dataclass
class Figure8Result:
    """All bars of Figure 8 plus the underlying campaigns."""

    scale_name: str
    rows: List[Figure8Row] = field(default_factory=list)
    campaigns: Dict[Tuple[int, int, int], TileCampaigns] = field(default_factory=dict)

    def row(self, tile, scenario: str, method: str) -> Figure8Row:
        for r in self.rows:
            if r.tile_size == tuple(tile) and r.scenario == scenario and r.method == method:
                return r
        raise KeyError((tile, scenario, method))

    def overhead(self, tile, scenario: str, method: str) -> float:
        """Overhead (%) of a method vs. the unprotected run of the same scenario."""
        return self.row(tile, scenario, method).overhead_vs_baseline


def run_figure8(scale: EvaluationScale | None = None) -> Figure8Result:
    """Regenerate Figure 8 at the requested scale."""
    scale = scale if scale is not None else EvaluationScale.quick()
    result = Figure8Result(scale_name=scale.name)
    for tile in scale.tile_sizes:
        campaigns = run_tile_campaigns(scale, tile)
        result.campaigns[tile] = campaigns
        for scenario in SCENARIOS:
            baseline = campaigns.get("no-abft", scenario).time_stats().mean
            for method in METHODS:
                stats = campaigns.get(method, scenario).time_stats()
                result.rows.append(
                    Figure8Row(
                        tile_size=tile,
                        scenario=scenario,
                        method=method,
                        mean_time=stats.mean,
                        std_time=stats.std,
                        overhead_vs_baseline=overhead_percent(stats.mean, baseline),
                    )
                )
    return result


def format_figure8(result: Figure8Result) -> str:
    """Render the Figure 8 series as a text table."""
    headers = ["Tile", "Scenario", "Method", "Mean time", "Std", "Overhead vs No-ABFT"]
    rows = []
    for r in result.rows:
        rows.append(
            [
                "x".join(str(v) for v in r.tile_size),
                r.scenario,
                method_label(r.method),
                format_seconds(r.mean_time),
                format_seconds(r.std_time),
                f"{r.overhead_vs_baseline:+.1f}%",
            ]
        )
    return format_table(
        headers,
        rows,
        title=f"Figure 8 — mean execution time ({result.scale_name} scale)",
    )
