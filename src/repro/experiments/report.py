"""Plain-text rendering of experiment results.

Every experiment module produces a structured result object; the helpers
here turn those into aligned text tables so that the benchmark harness
and the CLI can print the same rows/series the paper reports without a
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_scientific", "format_seconds"]


def format_scientific(value: float, digits: int = 3) -> str:
    """Scientific notation with a fixed number of significant digits."""
    if value != value:  # NaN
        return "nan"
    return f"{value:.{digits}e}"


def format_seconds(value: float) -> str:
    """Human-friendly seconds."""
    if value != value:
        return "nan"
    if value < 1e-3:
        return f"{value * 1e6:.1f} µs"
    if value < 1.0:
        return f"{value * 1e3:.2f} ms"
    return f"{value:.3f} s"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 3 * (len(widths) - 1)))
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)
