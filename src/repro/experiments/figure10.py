"""Figure 10 — impact of the bit-flip position on the final error.

The paper's Figure 10 fixes the bit position of the injected flip and
shows the distribution (quartile boxes) of the final arithmetic error
for every position 0..31, for the three methods. The qualitative shape
to reproduce:

* No-ABFT: fraction-bit flips cause small errors, exponent/sign flips
  cause errors many orders of magnitude above the result scale;
* Online ABFT: flips in bits ~13..31 are detected and corrected with a
  small residual error; flips in the *top* exponent bits overflow the
  checksums and the correction residual grows; flips in bits 0..12 are
  below the detection threshold (and below significance);
* Offline ABFT: every detected flip is erased completely by rollback
  and recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.common import (
    METHODS,
    EvaluationScale,
    make_hotspot_app,
    make_protector_factory,
    method_label,
)
from repro.experiments.report import format_scientific, format_table
from repro.faults.bitflip import bit_field
from repro.faults.campaign import CampaignConfig
from repro.faults.engine import CampaignEngine
from repro.metrics.statistics import quartile_summary

__all__ = ["Figure10Cell", "Figure10Result", "run_figure10", "format_figure10"]


@dataclass(frozen=True)
class Figure10Cell:
    """Error distribution of one (method, bit position) box."""

    method: str
    bit: int
    field: str
    median_error: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    detection_rate: float


@dataclass
class Figure10Result:
    """All boxes of Figure 10 (three panels: one per method)."""

    scale_name: str
    tile_size: Tuple[int, int, int]
    iterations: int
    repetitions_per_bit: int
    cells: List[Figure10Cell] = field(default_factory=list)

    def panel(self, method: str) -> List[Figure10Cell]:
        """All boxes of one method's panel, ordered by bit position."""
        return sorted(
            (c for c in self.cells if c.method == method), key=lambda c: c.bit
        )

    def cell(self, method: str, bit: int) -> Figure10Cell:
        for c in self.cells:
            if c.method == method and c.bit == bit:
                return c
        raise KeyError((method, bit))


def run_figure10(
    scale: EvaluationScale | None = None,
    methods: Tuple[str, ...] = METHODS,
    engine: CampaignEngine | None = None,
) -> Figure10Result:
    """Regenerate Figure 10 at the requested scale.

    Uses the smaller tile of the scale (the paper injects into the
    512x512x8 domain, but the error distributions per bit position are
    driven by the float32 representation, not by the domain size).  The
    per-bit campaigns — 32 positions x 3 methods at paper scale — run on
    one shared :class:`CampaignEngine`, whose persistent workers keep a
    single grid/protector pair alive across the whole bit sweep of a
    method instead of allocating one per run.
    """
    scale = scale if scale is not None else EvaluationScale.quick()
    tile = scale.primary_tile()
    iterations = scale.iterations[tile]
    app = make_hotspot_app(tile)
    reference = app.reference_solution(iterations)

    result = Figure10Result(
        scale_name=scale.name,
        tile_size=tile,
        iterations=iterations,
        repetitions_per_bit=scale.bit_repetitions,
    )
    with CampaignEngine.shared(engine) as eng:
        for method in methods:
            factory = make_protector_factory(
                method, epsilon=scale.epsilon, period=scale.period
            )
            for bit in scale.bit_positions:
                config = CampaignConfig(
                    iterations=iterations,
                    repetitions=scale.bit_repetitions,
                    inject=True,
                    bit=bit,
                    seed=1000 + bit,
                )
                campaign = eng.run(
                    app.build_grid, factory, config, reference=reference
                )
                box = quartile_summary(campaign.errors())
                result.cells.append(
                    Figure10Cell(
                        method=method,
                        bit=bit,
                        field=bit_field(bit, "float32"),
                        median_error=box["median"],
                        q1=box["q1"],
                        q3=box["q3"],
                        whisker_low=box["whisker_low"],
                        whisker_high=box["whisker_high"],
                        detection_rate=campaign.detection_rate(),
                    )
                )
    return result


def format_figure10(result: Figure10Result) -> str:
    """Render the Figure 10 panels as a text table."""
    headers = ["Method", "Bit", "Field", "Median err", "Q1", "Q3", "Detected"]
    rows = []
    for cell in sorted(result.cells, key=lambda c: (c.method, c.bit)):
        rows.append(
            [
                method_label(cell.method),
                str(cell.bit),
                cell.field,
                format_scientific(cell.median_error),
                format_scientific(cell.q1),
                format_scientific(cell.q3),
                f"{100 * cell.detection_rate:.0f}%",
            ]
        )
    title = (
        f"Figure 10 — error vs bit-flip position ({result.scale_name} scale, "
        f"tile {'x'.join(str(v) for v in result.tile_size)}, "
        f"{result.repetitions_per_bit} injections/bit)"
    )
    return format_table(headers, rows, title=title)
