"""Table 1 — overview of the main experimental parameters.

The paper's Table 1 lists, per tile size, the number of stencil
iterations, the number of experiment repetitions, the error-detection
threshold and the offline detection period. This module emits the same
table for any :class:`~repro.experiments.common.EvaluationScale`, so the
scaled-down campaign and the paper-scale campaign are documented with
the same code.

With ``measure_throughput=True`` the table also reports the measured
campaign throughput (runs/second of the online-ABFT bit-flip campaign)
per tile, timed on the :class:`~repro.faults.engine.CampaignEngine` —
the number that tells a reader how long the listed repetition counts
actually take on their machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import EvaluationScale, make_hotspot_app, make_protector_factory
from repro.experiments.report import format_table
from repro.faults.campaign import CampaignConfig
from repro.faults.engine import CampaignEngine

__all__ = ["Table1Row", "Table1Result", "run_table1", "format_table1"]

#: Repetition cap for the optional throughput measurement: enough runs
#: to amortise the engine's one-off state construction, few enough that
#: ``--measure-throughput`` stays interactive at every scale.
_THROUGHPUT_MAX_RUNS = 12


@dataclass(frozen=True)
class Table1Row:
    """One parameter column of Table 1 (one per tile size)."""

    tile_size: Tuple[int, int, int]
    iterations: int
    repetitions: int
    epsilon: float
    offline_period: int
    #: Measured online-ABFT campaign throughput (runs/second) on the
    #: campaign engine; ``None`` unless the caller asked to measure.
    runs_per_second: Optional[float] = None


@dataclass
class Table1Result:
    """All parameter columns plus the scale they were generated from."""

    scale_name: str
    rows: List[Table1Row] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        out: Dict[str, Dict[str, object]] = {}
        for row in self.rows:
            key = "x".join(str(v) for v in row.tile_size)
            out[key] = {
                "iterations": row.iterations,
                "repetitions": row.repetitions,
                "epsilon": row.epsilon,
                "offline_period": row.offline_period,
            }
            if row.runs_per_second is not None:
                out[key]["runs_per_second"] = row.runs_per_second
        return out


def _measure_throughput(
    scale: EvaluationScale,
    tile: Tuple[int, int, int],
    engine: CampaignEngine,
) -> float:
    """Runs/second of the tile's online-ABFT bit-flip campaign."""
    iterations = scale.iterations[tile]
    repetitions = min(scale.repetitions[tile], _THROUGHPUT_MAX_RUNS)
    app = make_hotspot_app(tile)
    reference = app.reference_solution(iterations)
    factory = make_protector_factory("online-abft", epsilon=scale.epsilon)
    config = CampaignConfig(
        iterations=iterations, repetitions=repetitions, inject=True
    )
    # Untimed call warms the worker states (grid, protector, stacked
    # buffers) so the measurement reflects steady-state throughput.
    engine.run(app.build_grid, factory, config, reference=reference)
    start = time.perf_counter()
    engine.run(app.build_grid, factory, config, reference=reference)
    elapsed = time.perf_counter() - start
    return repetitions / elapsed if elapsed > 0 else float("inf")


def run_table1(
    scale: EvaluationScale | None = None,
    measure_throughput: bool = False,
    engine: CampaignEngine | None = None,
) -> Table1Result:
    """Collect the experimental parameters for the given scale."""
    scale = scale if scale is not None else EvaluationScale.quick()
    result = Table1Result(scale_name=scale.name)

    def build_rows(eng: Optional[CampaignEngine]) -> None:
        for tile in scale.tile_sizes:
            throughput = None
            if measure_throughput:
                throughput = _measure_throughput(scale, tile, eng)
            result.rows.append(
                Table1Row(
                    tile_size=tile,
                    iterations=scale.iterations[tile],
                    repetitions=scale.repetitions[tile],
                    epsilon=scale.epsilon,
                    offline_period=scale.period,
                    runs_per_second=throughput,
                )
            )

    if not measure_throughput:
        build_rows(None)
        return result
    with CampaignEngine.shared(engine) as eng:
        build_rows(eng)
    return result


def format_table1(result: Table1Result) -> str:
    """Render the parameter table as text."""
    headers = ["Parameter"] + [
        "x".join(str(v) for v in row.tile_size) for row in result.rows
    ]
    rows = [
        ["Stencil iterations"] + [str(r.iterations) for r in result.rows],
        ["Experiment repetitions"] + [str(r.repetitions) for r in result.rows],
        ["Error detection threshold"] + [f"{r.epsilon:g}" for r in result.rows],
        ["Offline detection period"]
        + [f"{r.offline_period} iterations" for r in result.rows],
    ]
    if any(r.runs_per_second is not None for r in result.rows):
        rows.append(
            ["Campaign throughput (online)"]
            + [
                "-" if r.runs_per_second is None else f"{r.runs_per_second:.1f} runs/s"
                for r in result.rows
            ]
        )
    return format_table(
        headers, rows, title=f"Table 1 — experimental parameters ({result.scale_name} scale)"
    )
