"""Table 1 — overview of the main experimental parameters.

The paper's Table 1 lists, per tile size, the number of stencil
iterations, the number of experiment repetitions, the error-detection
threshold and the offline detection period. This module emits the same
table for any :class:`~repro.experiments.common.EvaluationScale`, so the
scaled-down campaign and the paper-scale campaign are documented with
the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.common import EvaluationScale
from repro.experiments.report import format_table

__all__ = ["Table1Row", "Table1Result", "run_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One parameter column of Table 1 (one per tile size)."""

    tile_size: Tuple[int, int, int]
    iterations: int
    repetitions: int
    epsilon: float
    offline_period: int


@dataclass
class Table1Result:
    """All parameter columns plus the scale they were generated from."""

    scale_name: str
    rows: List[Table1Row] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        out: Dict[str, Dict[str, object]] = {}
        for row in self.rows:
            key = "x".join(str(v) for v in row.tile_size)
            out[key] = {
                "iterations": row.iterations,
                "repetitions": row.repetitions,
                "epsilon": row.epsilon,
                "offline_period": row.offline_period,
            }
        return out


def run_table1(scale: EvaluationScale | None = None) -> Table1Result:
    """Collect the experimental parameters for the given scale."""
    scale = scale if scale is not None else EvaluationScale.quick()
    result = Table1Result(scale_name=scale.name)
    for tile in scale.tile_sizes:
        result.rows.append(
            Table1Row(
                tile_size=tile,
                iterations=scale.iterations[tile],
                repetitions=scale.repetitions[tile],
                epsilon=scale.epsilon,
                offline_period=scale.period,
            )
        )
    return result


def format_table1(result: Table1Result) -> str:
    """Render the parameter table as text."""
    headers = ["Parameter"] + [
        "x".join(str(v) for v in row.tile_size) for row in result.rows
    ]
    rows = [
        ["Stencil iterations"] + [str(r.iterations) for r in result.rows],
        ["Experiment repetitions"] + [str(r.repetitions) for r in result.rows],
        ["Error detection threshold"] + [f"{r.epsilon:g}" for r in result.rows],
        ["Offline detection period"]
        + [f"{r.offline_period} iterations" for r in result.rows],
    ]
    return format_table(
        headers, rows, title=f"Table 1 — experimental parameters ({result.scale_name} scale)"
    )
