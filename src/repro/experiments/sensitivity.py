"""Detection-sensitivity experiment (Sections 2 and 3.4 claims).

The paper claims its ABFT detector "accurately detects and corrects
errors with a magnitude above 1e-5, independently of the simulated
phenomenon" and "does not raise any false-positives", whereas the
multivariate-interpolation detector it compares against only reaches
magnitudes above ~1e-2. This experiment quantifies both claims: a
relative perturbation of controlled magnitude is injected into one
domain point and the detection rate of the ABFT detector and of the
spatial-interpolation baseline are measured, together with their
false-positive rates on clean runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.baselines.spatial_detector import SpatialInterpolationDetector
from repro.experiments.common import (
    EvaluationScale,
    make_hotspot_app,
    make_protector_factory,
)
from repro.experiments.report import format_scientific, format_table
from repro.faults.campaign import CampaignConfig
from repro.faults.engine import CampaignEngine

__all__ = [
    "SensitivityPoint",
    "SensitivityResult",
    "run_sensitivity",
    "format_sensitivity",
]

#: Relative perturbation magnitudes swept by the experiment.
DEFAULT_MAGNITUDES: Tuple[float, ...] = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7)


@dataclass(frozen=True)
class SensitivityPoint:
    """Detection rate of one detector at one perturbation magnitude."""

    detector: str
    magnitude: float
    detection_rate: float
    runs: int


@dataclass
class SensitivityResult:
    """Detection-rate curves plus false-positive rates on clean runs."""

    scale_name: str
    tile_size: Tuple[int, int, int]
    points: List[SensitivityPoint] = field(default_factory=list)
    false_positive_rates: dict = field(default_factory=dict)

    def curve(self, detector: str) -> List[SensitivityPoint]:
        return sorted(
            (p for p in self.points if p.detector == detector),
            key=lambda p: -p.magnitude,
        )

    def smallest_detected_magnitude(self, detector: str, threshold: float = 0.99) -> float:
        """Smallest magnitude at which the detector still catches >=threshold."""
        detected = [
            p.magnitude for p in self.curve(detector) if p.detection_rate >= threshold
        ]
        return min(detected) if detected else float("nan")


class _RelativePerturbation:
    """Inject hook: multiply one point by (1 + magnitude) at one iteration."""

    def __init__(self, iteration: int, index, magnitude: float) -> None:
        self.iteration = int(iteration)
        self.index = tuple(int(i) for i in index)
        self.magnitude = float(magnitude)
        self.fired = False

    def __call__(self, grid, iteration: int) -> None:
        if self.fired or iteration != self.iteration:
            return
        grid.u[self.index] *= 1.0 + self.magnitude
        self.fired = True


@dataclass(frozen=True)
class _SpatialDetectorFactory:
    """Picklable per-run factory for the spatial-interpolation baseline."""

    threshold: float

    def __call__(self, grid) -> SpatialInterpolationDetector:
        return SpatialInterpolationDetector(
            threshold=self.threshold, correct=False
        )


class _PerturbationHookFactory:
    """Draws one perturbation hook per run from the experiment's RNG.

    Called by the engine in run order, in the parent process, so the
    draws consume the shared generator in exactly the sequence the
    explicit per-run loop used.
    """

    def __init__(self, rng, shape, iterations: int, magnitude: float) -> None:
        self.rng = rng
        self.shape = tuple(shape)
        self.iterations = int(iterations)
        self.magnitude = float(magnitude)

    def __call__(self, run_index: int) -> _RelativePerturbation:
        iteration = int(self.rng.integers(1, self.iterations + 1))
        index = tuple(int(self.rng.integers(0, n)) for n in self.shape)
        return _RelativePerturbation(iteration, index, self.magnitude)


def run_sensitivity(
    scale: EvaluationScale | None = None,
    magnitudes: Tuple[float, ...] = DEFAULT_MAGNITUDES,
    runs_per_magnitude: int = 8,
    spatial_threshold: float = 1e-2,
    engine: CampaignEngine | None = None,
) -> SensitivityResult:
    """Measure detection rate vs. perturbation magnitude for both detectors.

    The clean runs and every magnitude's perturbed runs execute as
    campaigns on a shared :class:`CampaignEngine`; the custom
    perturbation hooks take the engine's replay strategy, so each worker
    reuses one persistent grid/detector pair across the whole sweep.
    """
    scale = scale if scale is not None else EvaluationScale.quick()
    tile = scale.primary_tile()
    iterations = scale.iterations[tile]
    app = make_hotspot_app(tile)
    reference = app.reference_solution(iterations)
    result = SensitivityResult(scale_name=scale.name, tile_size=tile)

    detectors = {
        "abft-online": make_protector_factory(
            "online-abft", epsilon=scale.epsilon
        ),
        "spatial-interpolation": _SpatialDetectorFactory(spatial_threshold),
    }

    rng = np.random.default_rng(4242)
    with CampaignEngine.shared(engine) as eng:
        for name, factory in detectors.items():
            # False positives on clean runs.
            clean_runs = max(2, runs_per_magnitude // 2)
            clean_config = CampaignConfig(
                iterations=iterations, repetitions=clean_runs, inject=False
            )
            clean = eng.run(
                app.build_grid, factory, clean_config, reference=reference
            )
            clean_flags = sum(1 for r in clean.records if r.detected)
            result.false_positive_rates[name] = clean_flags / clean_runs

            # Detection rate per magnitude.
            for magnitude in magnitudes:
                config = CampaignConfig(
                    iterations=iterations,
                    repetitions=runs_per_magnitude,
                    inject=False,
                )
                campaign = eng.run(
                    app.build_grid,
                    factory,
                    config,
                    reference=reference,
                    hook_factory=_PerturbationHookFactory(
                        rng, app.shape, iterations, magnitude
                    ),
                )
                detected = sum(1 for r in campaign.records if r.detected)
                result.points.append(
                    SensitivityPoint(
                        detector=name,
                        magnitude=magnitude,
                        detection_rate=detected / runs_per_magnitude,
                        runs=runs_per_magnitude,
                    )
                )
    return result


def format_sensitivity(result: SensitivityResult) -> str:
    """Render the sensitivity curves as a text table."""
    headers = ["Detector", "Perturbation", "Detection rate", "Runs"]
    rows = []
    for p in sorted(result.points, key=lambda p: (p.detector, -p.magnitude)):
        rows.append(
            [
                p.detector,
                format_scientific(p.magnitude, 1),
                f"{100 * p.detection_rate:.0f}%",
                str(p.runs),
            ]
        )
    fp = ", ".join(
        f"{name}: {100 * rate:.0f}%" for name, rate in result.false_positive_rates.items()
    )
    table = format_table(
        headers,
        rows,
        title=f"Detection sensitivity ({result.scale_name} scale)",
    )
    return table + f"\nFalse-positive rate on clean runs: {fp}"
