"""Halo (ghost-cell) helpers for tiled and distributed execution.

In the shared-memory tiled runner the whole previous-step domain is
available, so a tile's ghost cells are simply a larger slice of the
globally padded array (:func:`padded_tile_view`). In the simulated
distributed runner each rank owns a persistent padded buffer pair, so
halo strips are exchanged explicitly (:func:`boundary_strip`) and
written **in place** into the receiver's ghost slabs
(:func:`ingest_halo`, :func:`synthesize_ghost_into`) — no per-step
reassembly of the padded block.

The allocating forms (:func:`synthesize_ghost`,
:func:`stack_with_halos`) are kept for the pre-buffer-pair execution
shape; the weak-scaling benchmark uses them to reproduce the legacy
three-allocations-per-step path as a baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.parallel.decomposition import TileBox
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.shift import normalize_radius

__all__ = [
    "padded_tile_view",
    "tile_constant",
    "boundary_strip",
    "strip_size",
    "ghost_slab",
    "ingest_halo",
    "synthesize_ghost",
    "synthesize_ghost_into",
    "stack_with_halos",
]


def strip_size(interior_shape: Sequence[int], axis: int, width: int) -> int:
    """Element count of one ``width``-thick halo strip along ``axis``.

    The strip spans ``width`` layers of ``axis`` and the full interior
    extent of every other axis — the exact size of a
    :func:`boundary_strip` payload.  Used by the payload fault
    scheduler to map flat offsets and by the checkpoint/traffic
    accounting to predict per-message byte counts.
    """
    if width < 1:
        raise ValueError("strip width must be >= 1")
    shape = tuple(int(n) for n in interior_shape)
    if not 0 <= axis < len(shape):
        raise ValueError(f"axis {axis} out of range for shape {shape}")
    size = width
    for ax, n in enumerate(shape):
        if ax != axis:
            size *= n
    return int(size)


def padded_tile_view(
    padded_global: np.ndarray, box: TileBox, radius
) -> np.ndarray:
    """View of a globally padded array covering a tile plus its halo.

    ``padded_global`` is the output of
    :func:`repro.stencil.shift.pad_array` for the *whole* domain; the
    returned view has the tile's interior extent plus ``radius`` ghost
    cells on every side, whose values are either neighbouring-tile data
    or the global boundary condition — exactly what
    :func:`repro.stencil.sweep.sweep_padded` and
    :meth:`repro.core.online.OnlineABFT.process` expect.
    """
    radius = normalize_radius(radius, padded_global.ndim)
    slices = []
    for axis, s in enumerate(box.slices):
        # The global interior index i lives at padded index i + radius;
        # extending by radius on each side keeps everything in bounds.
        slices.append(slice(s.start, s.stop + 2 * radius[axis]))
    return padded_global[tuple(slices)]


def tile_constant(
    constant: Optional[np.ndarray], box: TileBox
) -> Optional[np.ndarray]:
    """The tile-local slice of the per-point constant term (or ``None``)."""
    if constant is None:
        return None
    return constant[box.slices]


def boundary_strip(u: np.ndarray, axis: int, side: str, width: int) -> np.ndarray:
    """Copy of the ``width``-thick boundary strip of ``u`` along ``axis``.

    ``side`` is ``"low"`` (indices ``0..width-1``) or ``"high"``
    (the last ``width`` indices). This is the payload a rank sends to its
    neighbour during halo exchange.
    """
    if width < 1:
        raise ValueError("strip width must be >= 1")
    sl = [slice(None)] * u.ndim
    if side == "low":
        sl[axis] = slice(0, width)
    elif side == "high":
        sl[axis] = slice(u.shape[axis] - width, u.shape[axis])
    else:
        raise ValueError(f"side must be 'low' or 'high', got {side!r}")
    # Explicit copy: the strip is a message payload and must not alias the
    # sender's interior (ascontiguousarray would return a view for slices
    # that are already contiguous).
    return np.array(u[tuple(sl)], copy=True)


def ghost_slab(
    padded: np.ndarray, radius, axis: int, side: str
) -> np.ndarray:
    """View of one ghost slab of a padded buffer.

    The slab spans the ``radius[axis]``-thick ghost range of ``axis`` on
    the requested ``side`` and the *interior* range of every other axis
    — exactly the region a neighbour's :func:`boundary_strip` payload
    covers.  Ghost corners are excluded on purpose: they are owned by
    the later axes' boundary refresh (see
    :func:`repro.stencil.shift.refresh_ghosts`), which runs after the
    halo has been ingested.
    """
    radius = normalize_radius(radius, padded.ndim)
    width = radius[axis]
    if width < 1:
        raise ValueError(f"axis {axis} has no ghost cells (radius 0)")
    sl = []
    for ax in range(padded.ndim):
        r = radius[ax]
        n = padded.shape[ax] - 2 * r
        if ax == axis:
            if side == "low":
                sl.append(slice(0, width))
            elif side == "high":
                sl.append(slice(r + n, 2 * r + n))
            else:
                raise ValueError(f"side must be 'low' or 'high', got {side!r}")
        else:
            sl.append(slice(r, r + n) if r else slice(None))
    return padded[tuple(sl)]


def ingest_halo(
    padded: np.ndarray, radius, axis: int, side: str, payload: np.ndarray
) -> np.ndarray:
    """Write a received halo payload into a padded buffer's ghost slab.

    This is the zero-copy receive path of the distributed runner: the
    neighbour's boundary strip lands directly in the persistent front
    buffer — no ``stack_with_halos`` concatenate, no fresh ``pad_array``
    block.  Returns the written slab view.
    """
    slab = ghost_slab(padded, radius, axis, side)
    payload = np.asarray(payload)
    if payload.shape != slab.shape:
        raise ValueError(
            f"halo payload has shape {payload.shape}, ghost slab expects "
            f"{slab.shape}"
        )
    slab[...] = payload
    return slab


def synthesize_ghost_into(
    padded: np.ndarray, radius, axis: int, side: str, bc: BoundaryCondition
) -> np.ndarray:
    """Fill one ghost slab in place from a closed boundary condition.

    The in-place counterpart of :func:`synthesize_ghost`, used by ranks
    at the global domain edge (no neighbour on that side).  Periodic
    boundaries are handled by neighbour wrap-around in the runner, so
    they never reach this function.  Returns the filled slab view.
    """
    slab = ghost_slab(padded, radius, axis, side)
    if bc.is_clamp:
        radius_t = normalize_radius(radius, padded.ndim)
        r = radius_t[axis]
        n = padded.shape[axis] - 2 * r
        edge = r if side == "low" else r + n - 1
        sl = []
        for ax in range(padded.ndim):
            r2 = radius_t[ax]
            n2 = padded.shape[ax] - 2 * r2
            if ax == axis:
                sl.append(slice(edge, edge + 1))
            else:
                sl.append(slice(r2, r2 + n2) if r2 else slice(None))
        slab[...] = padded[tuple(sl)]
    elif bc.is_periodic:
        raise ValueError("periodic ghosts are exchanged, not synthesised")
    else:
        slab[...] = bc.fill_value()
    return slab


def synthesize_ghost(
    u: np.ndarray, axis: int, side: str, width: int, bc: BoundaryCondition
) -> np.ndarray:
    """Ghost strip generated from a closed boundary condition.

    Used by ranks that sit at the global domain edge (no neighbour on
    that side). Periodic boundaries are handled by neighbour wrap-around
    in the runner, so they never reach this function.
    """
    shape = list(u.shape)
    shape[axis] = width
    if bc.is_clamp:
        edge = boundary_strip(u, axis, side, 1)
        reps = [1] * u.ndim
        reps[axis] = width
        return np.tile(edge, reps)
    if bc.is_periodic:
        # Wrap-around data belongs to the opposite rank; the runner routes
        # it as a regular halo message.
        raise ValueError("periodic ghosts are exchanged, not synthesised")
    return np.full(shape, bc.fill_value(), dtype=u.dtype)


def stack_with_halos(
    low_ghost: np.ndarray, interior: np.ndarray, high_ghost: np.ndarray, axis: int
) -> np.ndarray:
    """Concatenate ``low_ghost | interior | high_ghost`` along ``axis``."""
    for name, strip in (("low", low_ghost), ("high", high_ghost)):
        expected = list(interior.shape)
        expected[axis] = strip.shape[axis]
        if list(strip.shape) != expected:
            raise ValueError(
                f"{name} ghost strip has shape {strip.shape}, expected {tuple(expected)}"
            )
    return np.concatenate([low_ghost, interior, high_ghost], axis=axis)
