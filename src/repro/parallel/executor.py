"""Executors that run per-tile work serially or on a thread pool.

NumPy releases the GIL inside its array kernels, so a thread pool gives
genuine concurrency for the memory-bound sweeps of large tiles; for tiny
tiles the serial executor avoids the dispatch overhead. Both expose the
same ``map`` interface so the tiled runner is executor-agnostic.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["SerialExecutor", "ThreadPoolTileExecutor", "make_executor"]

T = TypeVar("T")
R = TypeVar("R")


def _resolve_workers(workers: Optional[int]) -> int:
    """``None`` → all available cores (never fewer than 1)."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    return int(workers)


class SerialExecutor:
    """Run tile tasks one after another in the calling thread."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving order."""
        return [fn(item) for item in items]

    def shutdown(self) -> None:
        """No resources to release."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


class ThreadPoolTileExecutor:
    """Run tile tasks concurrently on a shared-memory thread pool.

    Parameters
    ----------
    workers:
        Number of worker threads (the paper uses 8 OpenMP threads, one
        per layer of the 3D tiles). ``None`` uses every available core
        (``os.cpu_count()``).
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        workers = _resolve_workers(workers)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item concurrently, preserving order."""
        pool = self._ensure_pool()
        return list(pool.map(fn, items))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadPoolTileExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


def make_executor(kind: str = "serial", workers: Optional[int] = None):
    """Build an executor by name (``"serial"`` or ``"threads"``).

    ``workers=None`` sizes the thread pool to ``os.cpu_count()`` so
    callers no longer need to hardcode a worker count.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind in ("threads", "thread", "threadpool"):
        return ThreadPoolTileExecutor(workers=workers)
    raise ValueError(f"unknown executor kind {kind!r}; expected 'serial' or 'threads'")
