"""Executors that run per-tile work serially, on threads or on processes.

NumPy releases the GIL inside its array kernels, so a thread pool gives
genuine concurrency for the memory-bound sweeps of large tiles; for tiny
tiles the serial executor avoids the dispatch overhead; and for runs
where the per-tile Python dispatch itself becomes the bottleneck the
process pool sidesteps the GIL entirely, exchanging data with the
workers through ``multiprocessing.shared_memory`` (see
:mod:`repro.parallel.shm`) so the domain is never copied or pickled.

All executors expose the same ``map`` interface; the process executor
additionally exposes ``map_tiles`` (shared-memory tile tasks), which the
tiled runner uses automatically when available.

Selection mirrors the backend registry: ``make_executor(None)`` resolves
through the process-wide default installed by :func:`set_default_executor`
(what the ``--executor`` CLI flag sets), then the ``REPRO_EXECUTOR``
environment variable, then ``"serial"``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "EXECUTOR_ENV_VAR",
    "WORKERS_ENV_VAR",
    "BUILTIN_DEFAULT_EXECUTOR",
    "resolve_workers",
    "set_default_workers",
    "SerialExecutor",
    "ThreadPoolTileExecutor",
    "ProcessPoolTileExecutor",
    "make_executor",
    "available_executors",
    "set_default_executor",
    "default_executor_kind",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted for the default executor kind.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: Environment variable consulted for the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Executor used when neither the process default nor the env var is set.
BUILTIN_DEFAULT_EXECUTOR = "serial"

_DEFAULT_EXECUTOR_OVERRIDE: Optional[str] = None
_DEFAULT_WORKERS_OVERRIDE: Optional[int] = None

_KIND_ALIASES = {
    "serial": "serial",
    "threads": "threads",
    "thread": "threads",
    "threadpool": "threads",
    "process": "process",
    "processes": "process",
    "processpool": "process",
    "shm": "process",
}


def resolve_workers(workers: Optional[int]) -> int:
    """Resolve a worker count; never returns fewer than 1.

    ``None`` resolves through the process-wide default installed by
    :func:`set_default_workers` (what the ``--workers`` CLI flag sets),
    then the ``REPRO_WORKERS`` environment variable, then
    ``os.cpu_count()``.  An explicit count below 1 raises (defaults are
    clamped, explicit requests are validated).  This is the single place
    worker counts are interpreted — executors, runners and benchmarks
    all call it, so ``workers=None`` means the same thing everywhere.
    """
    if workers is None:
        if _DEFAULT_WORKERS_OVERRIDE is not None:
            return max(1, _DEFAULT_WORKERS_OVERRIDE)
        env = os.environ.get(WORKERS_ENV_VAR)
        if env is not None:
            try:
                return max(1, int(env))
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        return max(1, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def set_default_workers(workers: Optional[int]) -> None:
    """Install (or with ``None`` clear) the process-wide default worker count."""
    global _DEFAULT_WORKERS_OVERRIDE
    if workers is not None and int(workers) < 1:
        raise ValueError("workers must be >= 1")
    _DEFAULT_WORKERS_OVERRIDE = None if workers is None else int(workers)


class SerialExecutor:
    """Run tile tasks one after another in the calling thread."""

    kind = "serial"
    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving order."""
        return [fn(item) for item in items]

    def shutdown(self) -> None:
        """No resources to release."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


class ThreadPoolTileExecutor:
    """Run tile tasks concurrently on a shared-memory thread pool.

    Parameters
    ----------
    workers:
        Number of worker threads (the paper uses 8 OpenMP threads, one
        per layer of the 3D tiles). ``None`` uses every available core
        (``os.cpu_count()``).
    """

    kind = "threads"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item concurrently, preserving order."""
        pool = self._ensure_pool()
        return list(pool.map(fn, items))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadPoolTileExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


class ProcessPoolTileExecutor:
    """Run tile tasks on a pool of worker *processes* over shared memory.

    Unlike the thread pool, worker processes hold no Python objects in
    common with the parent, so the tiled runner routes work to them as
    :class:`~repro.parallel.shm.TileTask` descriptors: the global domain
    lives in ``multiprocessing.shared_memory`` (the grid's buffer pair is
    migrated there once, see ``GridBase.share_buffers``), each task names
    the shared blocks and the tile's slice bounds, and only the per-tile
    fused checksum vectors travel back over the pipe.  The per-tile ABFT
    protectors stay in the parent, reducing those checksums exactly as
    the serial path does.

    ``map`` is also provided for plain picklable functions, so the
    executor satisfies the generic executor contract.

    Parameters
    ----------
    workers:
        Number of worker processes; ``None`` uses every available core.
    """

    kind = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            from repro.parallel.shm import worker_init

            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=worker_init
            )
        return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply a picklable ``fn`` to every item across the worker pool."""
        pool = self._ensure_pool()
        return list(pool.map(fn, items))

    def submit(self, fn: Callable[..., R], *args, **kwargs):
        """Submit one task; returns the pool's ``concurrent.futures.Future``.

        The future-based interface lets a caller supervise in-flight
        work — collect completed results even when a sibling task's
        worker died, time out hung workers, and re-dispatch the losses
        after a :meth:`restart` (the campaign engine's worker-failure
        resilience is built on exactly this).
        """
        return self._ensure_pool().submit(fn, *args, **kwargs)

    def restart(self) -> None:
        """Tear down a (possibly broken) pool so the next task gets a fresh one.

        A worker process that dies mid-task breaks the whole
        ``ProcessPoolExecutor`` — every outstanding future fails and the
        pool refuses new work.  ``shutdown(wait=True)`` on such a pool
        can block on a worker that is hung rather than dead, so the
        teardown is non-blocking: cancel what never started, terminate
        any worker still alive, and drop the pool reference.  The next
        :meth:`submit`/:meth:`map` builds a fresh pool on demand.
        """
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        processes = list(getattr(pool, "_processes", {}).values() or [])
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            if proc.is_alive():
                proc.terminate()
        for proc in processes:
            proc.join(timeout=5)

    def map_tiles(self, tasks: Sequence) -> List[Tuple]:
        """Run shared-memory :class:`~repro.parallel.shm.TileTask` items.

        The tasks are grouped into (at most) one contiguous batch per
        worker and each batch is submitted as a single pool task
        (:func:`~repro.parallel.shm.run_tile_batch`), so the per-step
        submission overhead is ``O(workers)`` instead of ``O(tiles)`` —
        with a 2x2 tiling and cheap tiles the per-future pickle/IPC
        round trip otherwise dominates the step.

        Returns ``[(tile_index, checksums_or_None), ...]`` in task order.
        """
        from repro.parallel.shm import run_tile_batch

        tasks = list(tasks)
        if not tasks:
            return []
        pool = self._ensure_pool()
        n_batches = min(self.workers, len(tasks))
        base, extra = divmod(len(tasks), n_batches)
        batches = []
        start = 0
        for b in range(n_batches):
            size = base + (1 if b < extra else 0)
            batches.append(tuple(tasks[start:start + size]))
            start += size
        results: List[Tuple] = []
        for batch_result in pool.map(run_tile_batch, batches):
            results.extend(batch_result)
        return results

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessPoolTileExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


def available_executors() -> Tuple[str, ...]:
    """Canonical executor kinds accepted by :func:`make_executor`."""
    return ("process", "serial", "threads")


def default_executor_kind() -> str:
    """The kind the current process resolves ``kind=None`` to."""
    if _DEFAULT_EXECUTOR_OVERRIDE is not None:
        return _DEFAULT_EXECUTOR_OVERRIDE
    return os.environ.get(EXECUTOR_ENV_VAR, BUILTIN_DEFAULT_EXECUTOR)


def set_default_executor(kind: Optional[str]) -> None:
    """Install (or with ``None`` clear) the process-wide default executor.

    Takes precedence over the ``REPRO_EXECUTOR`` environment variable;
    the kind is validated immediately.
    """
    global _DEFAULT_EXECUTOR_OVERRIDE
    if kind is not None:
        if kind not in _KIND_ALIASES:
            raise ValueError(
                f"unknown executor kind {kind!r}; expected one of "
                f"{available_executors()}"
            )
        kind = _KIND_ALIASES[kind]
    _DEFAULT_EXECUTOR_OVERRIDE = kind


def make_executor(kind: Optional[str] = None, workers: Optional[int] = None):
    """Build an executor by kind (``"serial"``, ``"threads"``, ``"process"``).

    ``kind=None`` resolves through the default chain (process-wide
    override, then ``REPRO_EXECUTOR``, then ``"serial"``); ``workers=None``
    sizes pools to ``os.cpu_count()``.
    """
    if kind is None:
        kind = default_executor_kind()
    canonical = _KIND_ALIASES.get(str(kind))
    if canonical == "serial":
        return SerialExecutor()
    if canonical == "threads":
        return ThreadPoolTileExecutor(workers=workers)
    if canonical == "process":
        return ProcessPoolTileExecutor(workers=workers)
    raise ValueError(
        f"unknown executor kind {kind!r}; expected one of {available_executors()}"
    )
