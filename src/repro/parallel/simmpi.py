"""Simulated message-passing (distributed-memory) execution.

The paper argues its ABFT scheme applies unchanged to distributed-memory
systems because every rank protects its own block with its own checksum
vectors — the property it calls "intrinsically parallel" (Section 5.2):
no global reduction or cross-rank checksum is ever needed, so the
protection overhead stays flat under weak scaling.  Real MPI is not
available in this environment, so this module provides a small
deterministic stand-in:

* :class:`SimChannel` — an in-memory mailbox with ``send``/``recv``
  keyed by (source, destination, tag); payloads are copied on send, so
  ranks cannot share memory by accident.  Message and byte counts are
  tracked globally and per tag for the weak-scaling benchmark.  Every
  payload carries a CRC32: in-flight corruption and drops (scheduled
  through :meth:`SimChannel.schedule_fault`, e.g. by the
  ``region-targeted`` fault models) are detected at receive time and
  recovered by retransmission from the sender-side retention copy,
  with per-tag drop/corrupt/retransmit accounting — the standard
  link-level protection real interconnects provide underneath MPI.
* :class:`SimRank` — one rank's state: a persistent padded
  :class:`~repro.stencil.doublebuffer.DoubleBufferedGrid` pair holding
  its contiguous block of the domain (split along the chosen
  decomposition axis), its
  constant-term block and its own
  :class:`~repro.core.online.OnlineABFT` protector.
* :class:`DistributedStencilRunner` — drives all ranks in lock-step
  through the zero-copy buffer-pair lifecycle: every iteration each
  rank posts its boundary strips, receives its neighbours' strips
  **directly into its front buffer's ghost slabs**
  (:func:`~repro.parallel.halo.ingest_halo` — no ``stack_with_halos``
  concatenate, no per-step ``pad_array``), refreshes the remaining
  axes' ghosts in place, sweeps into its back buffer through the
  backend's fused ``step_into_with_checksums`` primitive (the sweep
  itself produces the rank's verified checksums), verifies locally and
  swaps the pair.  Zero full-block allocations per rank per iteration.

The simulation is sequential under the hood (ranks are stepped in a
loop), but all inter-rank data flows through explicit messages, so the
communication structure matches a 1D-decomposed MPI stencil code.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.backends import get_backend
from repro.backends.registry import BackendLike
from repro.core.online import OnlineABFT
from repro.core.protector import StepReport
from repro.parallel.decomposition import partition_extent
from repro.parallel.halo import (
    boundary_strip,
    ingest_halo,
    synthesize_ghost_into,
)
from repro.stencil.boundary import BoundarySpec
from repro.stencil.doublebuffer import DoubleBufferedGrid
from repro.stencil.grid import GridBase
from repro.stencil.spec import StencilSpec

__all__ = ["ChannelError", "SimChannel", "SimRank", "DistributedStencilRunner"]

#: Default axis along which the domain is distributed across ranks.
#: :class:`DistributedStencilRunner` accepts any axis via ``axis=`` —
#: every decomposition axis runs the same compiled fused step.
DISTRIBUTED_AXIS = 0


class ChannelError(RuntimeError):
    """A receive could not be satisfied (empty mailbox or unrecoverable loss).

    Subclasses :class:`RuntimeError` so existing callers that guarded the
    old generic error keep working.
    """


@dataclass
class _Message:
    """One in-flight message: the wire copy plus integrity metadata.

    ``payload`` is what travels (and what scheduled faults mutate);
    ``pristine`` is the sender-side retention copy used for
    retransmission; ``crc`` is the CRC32 of the payload as it was sent.
    When no fault struck, ``payload`` *is* ``pristine`` (no extra copy).
    """

    payload: np.ndarray
    pristine: np.ndarray
    crc: int
    dropped: bool = False


class SimChannel:
    """In-memory point-to-point message mailbox with link-level integrity.

    Messages are addressed by ``(source, destination, tag)`` and consumed
    in FIFO order per address (an O(1) ``deque.popleft`` per receive).
    Payload arrays are copied on send so the sender cannot mutate data
    already "on the wire".  Traffic is accounted globally
    (``messages_sent``/``bytes_sent``) and per tag
    (``messages_by_tag``/``bytes_by_tag``) — the weak-scaling benchmark
    reports the per-tag breakdown.

    Parameters
    ----------
    integrity:
        Verify a CRC32 per payload at receive time (default on). A
        corrupted payload is detected and recovered by "retransmission"
        from the sender-side retention copy; a dropped message is
        likewise detected and retransmitted. Both are counted per tag
        (``corrupted_by_tag``/``dropped_by_tag``/
        ``retransmitted_by_tag``). With ``integrity=False`` corruption
        passes through silently and a drop raises :class:`ChannelError`
        — the unprotected-wire baseline the hardening tests compare
        against.

    Notes
    -----
    In-flight faults are scheduled with :meth:`schedule_fault` against
    the 1-based *global send ordinal* (the n-th ``send`` on this
    channel), which is how the ``payload``-targeted fault models address
    a specific halo message deterministically.
    """

    def __init__(self, integrity: bool = True) -> None:
        self._mailboxes: Dict[Tuple[int, int, str], Deque[_Message]] = {}
        self.integrity = bool(integrity)
        self._send_ordinal = 0
        self._scheduled: Dict[int, Tuple[str, Tuple[int, ...], int]] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self.messages_corrupted = 0
        self.messages_retransmitted = 0
        self.messages_by_tag: Dict[str, int] = {}
        self.bytes_by_tag: Dict[str, int] = {}
        self.dropped_by_tag: Dict[str, int] = {}
        self.corrupted_by_tag: Dict[str, int] = {}
        self.retransmitted_by_tag: Dict[str, int] = {}

    # -- fault surface ---------------------------------------------------------
    def schedule_fault(
        self,
        ordinal: int,
        action: str = "corrupt",
        index: Tuple[int, ...] = (0,),
        bit: int = 0,
    ) -> None:
        """Arm an in-flight fault against the ``ordinal``-th future send.

        ``action`` is ``"corrupt"`` (flip ``bit`` of the payload element
        at flat offset ``index[0]``) or ``"drop"`` (the wire loses the
        message). The fault strikes the in-flight copy only — the
        sender-side retention copy stays pristine, which is what makes
        detect-and-retransmit recovery possible.
        """
        ordinal = int(ordinal)
        if ordinal < 1:
            raise ValueError("send ordinals are 1-based; got ordinal < 1")
        if ordinal <= self._send_ordinal:
            raise ValueError(
                f"send ordinal {ordinal} already passed "
                f"({self._send_ordinal} messages sent)"
            )
        if action not in ("corrupt", "drop"):
            raise ValueError(
                f"unknown in-flight fault action {action!r}; "
                "expected 'corrupt' or 'drop'"
            )
        self._scheduled[ordinal] = (action, tuple(int(i) for i in index), int(bit))

    def _count(self, counters: Dict[str, int], tag: str) -> None:
        counters[tag] = counters.get(tag, 0) + 1

    def send(self, source: int, dest: int, tag: str, payload: np.ndarray) -> None:
        tag = str(tag)
        key = (int(source), int(dest), tag)
        pristine = np.array(payload, copy=True)
        crc = zlib.crc32(pristine.tobytes())
        self._send_ordinal += 1
        fault = self._scheduled.pop(self._send_ordinal, None)
        wire = pristine
        dropped = False
        if fault is not None:
            action, index, bit = fault
            if action == "drop":
                dropped = True
                self.messages_dropped += 1
                self._count(self.dropped_by_tag, tag)
            else:
                offset = index[0] if index else 0
                if not 0 <= offset < pristine.size:
                    raise ValueError(
                        f"in-flight corruption offset {offset} out of range "
                        f"for a payload of {pristine.size} elements "
                        f"(tag {tag!r}, rank {source} -> rank {dest})"
                    )
                wire = pristine.copy()
                from repro.faults.bitflip import flip_bit_in_array

                flip_bit_in_array(wire.reshape(-1), (offset,), bit)
                self.messages_corrupted += 1
                self._count(self.corrupted_by_tag, tag)
        self._mailboxes.setdefault(key, deque()).append(
            _Message(payload=wire, pristine=pristine, crc=crc, dropped=dropped)
        )
        nbytes = int(pristine.nbytes)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.messages_by_tag[tag] = self.messages_by_tag.get(tag, 0) + 1
        self.bytes_by_tag[tag] = self.bytes_by_tag.get(tag, 0) + nbytes

    def recv(self, source: int, dest: int, tag: str) -> np.ndarray:
        tag = str(tag)
        key = (int(source), int(dest), tag)
        queue = self._mailboxes.get(key)
        if not queue:
            raise ChannelError(
                f"no message from rank {source} to rank {dest} with tag "
                f"{tag!r}: the mailbox is empty (was the halo posted this "
                f"iteration?)"
            )
        msg = queue.popleft()
        if msg.dropped:
            if not self.integrity:
                raise ChannelError(
                    f"no message from rank {source} to rank {dest} with tag "
                    f"{tag!r}: the payload was dropped in flight and "
                    f"integrity tracking is disabled (no retransmission)"
                )
            self.messages_retransmitted += 1
            self._count(self.retransmitted_by_tag, tag)
            return msg.pristine
        if self.integrity and msg.payload is not msg.pristine:
            if zlib.crc32(msg.payload.tobytes()) != msg.crc:
                self.messages_retransmitted += 1
                self._count(self.retransmitted_by_tag, tag)
                return msg.pristine
        return msg.payload

    def pending(self) -> int:
        """Number of messages posted but not yet received."""
        return sum(len(q) for q in self._mailboxes.values())

    def traffic(self) -> Dict[str, object]:
        """Snapshot of the traffic counters (for benchmark reports)."""
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "messages_dropped": self.messages_dropped,
            "messages_corrupted": self.messages_corrupted,
            "messages_retransmitted": self.messages_retransmitted,
            "messages_by_tag": dict(self.messages_by_tag),
            "bytes_by_tag": dict(self.bytes_by_tag),
            "dropped_by_tag": dict(self.dropped_by_tag),
            "corrupted_by_tag": dict(self.corrupted_by_tag),
            "retransmitted_by_tag": dict(self.retransmitted_by_tag),
        }


class SimRank:
    """One simulated rank: its persistent buffer pair, protector and links.

    The rank's block lives in a
    :class:`~repro.stencil.doublebuffer.DoubleBufferedGrid` whose
    distributed-axis ghost slabs are externally managed: the runner
    ingests neighbour halo payloads (or synthesises the closed boundary
    condition at the domain edge) straight into the front buffer before
    every sweep, and the remaining axes refresh from the boundary spec
    inside the backend-owned step.
    """

    def __init__(
        self,
        rank: int,
        block: np.ndarray,
        constant: Optional[np.ndarray],
        protector: Optional[OnlineABFT],
        lo_neighbor: Optional[int],
        hi_neighbor: Optional[int],
        global_offset: int,
        radius,
        boundary: BoundarySpec,
        axis: int = DISTRIBUTED_AXIS,
    ) -> None:
        self.rank = int(rank)
        self.axis = int(axis)
        external = (self.axis,) if radius[self.axis] > 0 else ()
        self.buffers = DoubleBufferedGrid(
            block, radius, boundary, external_axes=external
        )
        self.constant = constant
        self.protector = protector
        self.lo_neighbor = lo_neighbor
        self.hi_neighbor = hi_neighbor
        self.global_offset = int(global_offset)
        self.reports: List[StepReport] = []

    @property
    def interior(self) -> np.ndarray:
        """Live view of the rank's current block (front-buffer interior).

        Mutations (injected faults, ABFT corrections) land directly in
        the persistent pair and are picked up by the next halo post and
        ghost refresh.
        """
        return self.buffers.interior

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.buffers.interior_shape


class DistributedStencilRunner:
    """Lock-step driver for a 1D rank decomposition with halo exchange.

    Parameters
    ----------
    grid:
        The global problem definition; its current state is scattered
        across the ranks at construction time.
    n_ranks:
        Number of simulated ranks; the domain is block-distributed along
        ``axis``.
    protect:
        Protect every rank's block with its own OnlineABFT instance.
    backend:
        Compute backend driving every rank's fused step (registry name
        or instance; ``None`` follows the process default).
    axis:
        Decomposition axis (default 0).  Any axis works — including the
        orderings where the external axis follows refreshed axes, which
        the compiled backend handles like any other layout.
    block_steps:
        Temporal blocking factor.  When eligible, every rank's buffer
        pair carries a deep ghost slab of ``block_steps * radius`` along
        the distributed axis, halos are exchanged once per ``block_steps``
        sweeps, and each exchange drives the backend's fused k-step
        kernel (trapezoidal tile shrink across the deep halo) —
        ``block_steps``\\ x fewer messages and kernel launches for a
        bit-identical trajectory.  The effective factor
        (:attr:`effective_block_steps`) is capped to 1 — with the cause
        recorded in :attr:`block_cap_reason` — when blocking cannot
        preserve semantics: per-rank protection (OnlineABFT verifies
        every step), a non-periodic boundary along the distributed axis
        (edge ranks must re-synthesise ghosts every sweep), a per-point
        constant (cannot be trapezoid-indexed across the deep halo), or
        a rank block thinner than the deep halo.  Injection hooks force
        the single-step path at :meth:`run` time.
    abft_kwargs:
        Extra keyword arguments for each rank's protector.

    Notes
    -----
    Each iteration runs the zero-copy rank lifecycle: post strips →
    ingest halos in place → backend-owned fused step (partial-axis
    ghost refresh + sweep into the back buffer + per-rank checksums in
    one call) → swap → verify.  In fault-free operation the verified
    checksum is produced by the sweep itself
    (:meth:`OnlineABFT.process` receives it as
    ``precomputed_checksums``); with an injection hook the checksum is
    recomputed after the hook runs, preserving the paper's injection
    semantics exactly as the serial protector does.
    """

    def __init__(
        self,
        grid: GridBase,
        n_ranks: int = 4,
        protect: bool = True,
        backend: BackendLike = None,
        axis: int = DISTRIBUTED_AXIS,
        block_steps: int = 1,
        **abft_kwargs,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        block_steps = int(block_steps)
        if block_steps < 1:
            raise ValueError("block_steps must be >= 1")
        if not 0 <= int(axis) < grid.ndim:
            raise ValueError(
                f"axis {axis} out of range for a {grid.ndim}-d grid"
            )
        self.axis = int(axis)
        self.spec: StencilSpec = grid.spec
        self.boundary: BoundarySpec = grid.boundary
        self.radius = grid.spec.radius()
        self.dtype = grid.dtype
        self.global_shape = grid.shape
        self.iteration = grid.iteration
        self.channel = SimChannel()
        self.n_ranks = int(n_ranks)
        self.backend_spec = backend

        axis_bc = self.boundary.axis(self.axis)
        bounds = partition_extent(grid.shape[self.axis], self.n_ranks)

        # Temporal-blocking eligibility: cap k to 1 (recording why)
        # whenever a deep-halo blocked schedule could not reproduce the
        # single-step trajectory bit for bit.
        width = self.radius[self.axis]
        min_extent = min(stop - start for start, stop in bounds)
        reason: Optional[str] = None
        if block_steps > 1:
            if protect:
                reason = (
                    "per-rank OnlineABFT verifies every step; blocked"
                    " sweeps would skip its detection points"
                )
            elif width > 0 and not axis_bc.is_periodic:
                reason = (
                    f"{axis_bc.kind!r} boundary along distributed axis"
                    f" {self.axis}: edge ranks must re-synthesise ghosts"
                    " every sweep"
                )
            elif width > 0 and grid.constant is not None:
                reason = (
                    "a per-point constant cannot be trapezoid-indexed"
                    " across the deep external halo"
                )
            elif width > 0 and min_extent < block_steps * width:
                reason = (
                    f"smallest rank block extent {min_extent} is thinner"
                    f" than the deep halo k*r = {block_steps * width}"
                )
        self.block_steps = block_steps
        self.block_cap_reason = reason
        self.effective_block_steps = 1 if reason is not None else block_steps
        #: Ghost-slab depth along the distributed axis (= k * radius).
        self.halo_width = self.effective_block_steps * width
        rank_radius = list(self.radius)
        rank_radius[self.axis] = self.halo_width
        self.rank_radius = tuple(rank_radius)

        self.ranks: List[SimRank] = []
        for r, (start, stop) in enumerate(bounds):
            sl = [slice(None)] * grid.ndim
            sl[self.axis] = slice(start, stop)
            block = np.array(grid.u[tuple(sl)], copy=True)
            const = None
            if grid.constant is not None:
                const = np.array(grid.constant[tuple(sl)], copy=True)
            if axis_bc.is_periodic:
                lo = (r - 1) % self.n_ranks
                hi = (r + 1) % self.n_ranks
            else:
                lo = r - 1 if r > 0 else None
                hi = r + 1 if r < self.n_ranks - 1 else None
            protector = None
            if protect:
                protector = OnlineABFT(
                    self.spec,
                    self.boundary,
                    block.shape,
                    dtype=self.dtype,
                    constant=const,
                    backend=backend,
                    **abft_kwargs,
                )
            self.ranks.append(
                SimRank(
                    rank=r,
                    block=block,
                    constant=const,
                    protector=protector,
                    lo_neighbor=lo,
                    hi_neighbor=hi,
                    global_offset=start,
                    radius=self.rank_radius,
                    boundary=self.boundary,
                    axis=self.axis,
                )
            )
        # Layout-aware warmup: compile (or load from the on-disk cache)
        # the exact step kernels the ranks will run — the distributed
        # axis is external (halo ingested from neighbours), every other
        # axis refreshes from the boundary condition.
        external = (self.axis,) if self.radius[self.axis] > 0 else ()
        self.backend.warmup(
            self.spec,
            boundary=self.boundary,
            dtype=self.dtype,
            radius=self.rank_radius,
            external_axes=external,
            block_steps=self.effective_block_steps,
        )

    @property
    def backend(self):
        """The resolved compute backend (tracks the process default)."""
        return get_backend(self.backend_spec)

    # -- halo exchange -------------------------------------------------------------
    def _post_halos(self) -> None:
        width = self.halo_width
        if width == 0:
            return
        for rank in self.ranks:
            interior = rank.interior
            if rank.lo_neighbor is not None:
                strip = boundary_strip(interior, self.axis, "low", width)
                self.channel.send(rank.rank, rank.lo_neighbor, "to_hi", strip)
            if rank.hi_neighbor is not None:
                strip = boundary_strip(interior, self.axis, "high", width)
                self.channel.send(rank.rank, rank.hi_neighbor, "to_lo", strip)

    def _ingest_halos(self, rank: SimRank) -> None:
        """Write halo messages / edge boundary straight into the front buffer.

        Neighbour payloads land in the distributed-axis ghost slabs of
        the rank's persistent front buffer (no concatenation, no fresh
        padded block); domain-edge sides synthesise the closed boundary
        condition in place.  The remaining axes' ghost corners are then
        rebuilt over these slabs by the backend's partial-axis refresh
        during the step, matching the serial ``pad_array`` order
        bit for bit.
        """
        width = self.halo_width
        if width == 0:
            return
        front = rank.buffers.front
        axis_bc = self.boundary.axis(self.axis)
        if rank.lo_neighbor is not None:
            payload = self.channel.recv(rank.lo_neighbor, rank.rank, "to_lo")
            ingest_halo(front, self.rank_radius, self.axis, "low", payload)
        else:
            synthesize_ghost_into(
                front, self.rank_radius, self.axis, "low", axis_bc
            )
        if rank.hi_neighbor is not None:
            payload = self.channel.recv(rank.hi_neighbor, rank.rank, "to_hi")
            ingest_halo(front, self.rank_radius, self.axis, "high", payload)
        else:
            synthesize_ghost_into(
                front, self.rank_radius, self.axis, "high", axis_bc
            )

    # -- stepping --------------------------------------------------------------------
    def step(self, inject=None) -> List[StepReport]:
        """One distributed sweep: exchange halos, sweep, verify per rank."""
        self._post_halos()
        self.iteration += 1
        backend = self.backend

        # Region-targeted hooks may corrupt a just-ingested ghost slab —
        # after halo ingestion, before the sweep reads it.
        ghost_hook = getattr(inject, "inject_ghosts", None)

        reports: List[StepReport] = []
        for rank in self.ranks:
            self._ingest_halos(rank)
            if ghost_hook is not None:
                ghost_hook(self, self.iteration, rank)
            protector = rank.protector
            if protector is not None and inject is None:
                # Fault-free fast path: the fused backend step produces
                # the rank's verified checksum(s) while sweeping.
                src_padded, _, checksums = rank.buffers.step(
                    backend,
                    self.spec,
                    constant=rank.constant,
                    axes=protector.verify_axes(),
                    checksum_dtype=protector.checksum_dtype,
                )
                rank.buffers.swap()
                report = protector.process(
                    rank.interior,
                    src_padded,
                    self.iteration,
                    precomputed_checksums=checksums,
                )
            else:
                src_padded, _, _ = rank.buffers.step(
                    backend, self.spec, constant=rank.constant
                )
                rank.buffers.swap()
                if inject is not None:
                    inject(self, self.iteration, rank)
                if protector is not None:
                    # The checksum must reflect the possibly corrupted
                    # block, so it is recomputed inside ``process``.
                    report = protector.process(
                        rank.interior, src_padded, self.iteration
                    )
                else:
                    report = StepReport(
                        iteration=self.iteration, detection_performed=False
                    )
            rank.reports.append(report)
            reports.append(report)
        return reports

    def _blocked_step(self, k: int) -> List[StepReport]:
        """One deep-halo exchange driving ``k`` fused sweeps per rank.

        Each rank posts a ``k * radius``-deep strip, ingests its
        neighbours' strips into the deep ghost slabs and runs the
        backend's k-step kernel: the distributed axis shrinks
        trapezoidally across the deep halo while every other axis
        refreshes from the boundary spec each sub-step.  Only reachable
        for unprotected runs, so the per-iteration reports are
        synthesised (``detection_performed=False``), iteration-major to
        match the shape of ``k`` single steps.
        """
        self._post_halos()
        backend = self.backend
        start = self.iteration
        self.iteration += k
        for rank in self.ranks:
            self._ingest_halos(rank)
            rank.buffers.multi_step(
                backend, self.spec, k, constant=rank.constant
            )
        reports: List[StepReport] = []
        for it in range(start + 1, start + k + 1):
            for rank in self.ranks:
                report = StepReport(iteration=it, detection_performed=False)
                rank.reports.append(report)
                reports.append(report)
        return reports

    def run(self, iterations: int, inject=None) -> List[StepReport]:
        """Advance ``iterations`` distributed sweeps.

        With an eligible ``block_steps`` and no injection hook the loop
        advances in fused k-step chunks (one halo exchange per chunk);
        injection hooks force the per-iteration :meth:`step` path so
        faults land on exact iteration boundaries.
        """
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        all_reports: List[StepReport] = []
        k = self.effective_block_steps if inject is None else 1
        remaining = iterations
        while remaining > 0:
            if k <= 1 or remaining == 1:
                all_reports.extend(self.step(inject=inject))
                remaining -= 1
            else:
                chunk = min(k, remaining)
                all_reports.extend(self._blocked_step(chunk))
                remaining -= chunk
        return all_reports

    # -- gather / bookkeeping -----------------------------------------------------------
    def gather(self) -> np.ndarray:
        """Assemble the global domain from all rank blocks."""
        return np.concatenate(
            [rank.interior for rank in self.ranks], axis=self.axis
        )

    def total_detected(self) -> int:
        return sum(
            r.protector.total_detections for r in self.ranks if r.protector is not None
        )

    def total_corrected(self) -> int:
        return sum(
            r.protector.total_corrections for r in self.ranks if r.protector is not None
        )

    def rank_of_global_index(self, index) -> Tuple[int, Tuple[int, ...]]:
        """Map a global domain index to ``(rank, local index)``."""
        index = tuple(int(i) for i in index)
        pos = index[self.axis]
        for rank in self.ranks:
            size = rank.shape[self.axis]
            if rank.global_offset <= pos < rank.global_offset + size:
                local = list(index)
                local[self.axis] = pos - rank.global_offset
                return rank.rank, tuple(local)
        raise ValueError(f"index {index} outside the global domain")
