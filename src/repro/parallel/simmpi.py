"""Simulated message-passing (distributed-memory) execution.

The paper argues its ABFT scheme applies unchanged to distributed-memory
systems because every rank protects its own block with its own checksum
vectors — the property it calls "intrinsically parallel" (Section 5.2):
no global reduction or cross-rank checksum is ever needed, so the
protection overhead stays flat under weak scaling.  Real MPI is not
available in this environment, so this module provides a small
deterministic stand-in:

* :class:`SimChannel` — an in-memory mailbox with ``send``/``recv``
  keyed by (source, destination, tag); payloads are copied on send, so
  ranks cannot share memory by accident.  Message and byte counts are
  tracked globally and per tag for the weak-scaling benchmark.  Every
  payload carries a CRC32: in-flight corruption and drops (scheduled
  through :meth:`SimChannel.schedule_fault`, e.g. by the
  ``region-targeted`` fault models) are detected at receive time and
  recovered by retransmission from the sender-side retention copy,
  with per-tag drop/corrupt/retransmit accounting — the standard
  link-level protection real interconnects provide underneath MPI.
* :class:`SimRank` — one rank's state: a persistent padded
  :class:`~repro.stencil.doublebuffer.DoubleBufferedGrid` pair holding
  its contiguous block of the domain (split along the chosen
  decomposition axis), its
  constant-term block and its own
  :class:`~repro.core.online.OnlineABFT` protector.
* :class:`DistributedStencilRunner` — drives all ranks in lock-step
  through the zero-copy buffer-pair lifecycle: every iteration each
  rank posts its boundary strips, receives its neighbours' strips
  **directly into its front buffer's ghost slabs**
  (:func:`~repro.parallel.halo.ingest_halo` — no ``stack_with_halos``
  concatenate, no per-step ``pad_array``), refreshes the remaining
  axes' ghosts in place, sweeps into its back buffer through the
  backend's fused ``step_into_with_checksums`` primitive (the sweep
  itself produces the rank's verified checksums), verifies locally and
  swaps the pair.  Zero full-block allocations per rank per iteration.

The simulation is sequential under the hood (ranks are stepped in a
loop), but all inter-rank data flows through explicit messages, so the
communication structure matches a 1D-decomposed MPI stencil code.
"""

from __future__ import annotations

import time as _time
import zlib
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.backends import get_backend
from repro.backends.registry import BackendLike
from repro.core.online import OnlineABFT
from repro.core.protector import StepReport
from repro.parallel.decomposition import partition_extent
from repro.parallel.halo import (
    boundary_strip,
    ingest_halo,
    synthesize_ghost_into,
)
from repro.stencil.boundary import BoundarySpec
from repro.stencil.doublebuffer import DoubleBufferedGrid
from repro.stencil.grid import GridBase
from repro.stencil.spec import StencilSpec

__all__ = [
    "ChannelError",
    "RankFailure",
    "CheckpointCorrupt",
    "RecoveryError",
    "RankCheckpoint",
    "RecoveryStats",
    "SimChannel",
    "SimRank",
    "DistributedStencilRunner",
]

#: Default axis along which the domain is distributed across ranks.
#: :class:`DistributedStencilRunner` accepts any axis via ``axis=`` —
#: every decomposition axis runs the same compiled fused step.
DISTRIBUTED_AXIS = 0

#: Default checkpoint period: the ABFT detection period Δ (the offline
#: protector's default ``period``).  A checkpoint is exactly an offline
#: detection point — state committed only after verification — so the
#: buddy-checkpoint cadence defaults to the same rule.
DETECTION_PERIOD = 16

#: Channel tags of the buddy-checkpoint shipments (domain payload and
#: packed metadata vector), counted in :meth:`SimChannel.traffic` per
#: tag alongside halo traffic.
CKPT_TAG = "ckpt"
CKPT_META_TAG = "ckpt_meta"


class ChannelError(RuntimeError):
    """A receive could not be satisfied (empty mailbox or unrecoverable loss).

    Subclasses :class:`RuntimeError` so existing callers that guarded the
    old generic error keep working.
    """


class RankFailure(ChannelError):
    """A peer stopped answering: the fail-stop verdict of the channel.

    Raised by :meth:`SimChannel.recv` when the source rank has been
    declared failed and its mailbox holds nothing, and by
    :meth:`SimChannel.check_liveness` when a heartbeat round finds a
    failed rank.  ``rank`` names the dead peer so the runner's recovery
    path knows whom to rebuild.
    """

    def __init__(self, rank: int, message: str) -> None:
        super().__init__(message)
        self.rank = int(rank)


class CheckpointCorrupt(RuntimeError):
    """A checkpoint failed its integrity check and must not be restored.

    Raised when a checkpoint's domain payload no longer matches its
    (self-checked) checksum vector — restoring it would resurrect
    corrupted state, so recovery refuses.
    """


class RecoveryError(RuntimeError):
    """Rank-failure recovery is impossible in the current configuration.

    Examples: no checkpointing enabled when a rank died, a failed rank
    whose buddy also died (the in-memory copy is gone), or a sole rank
    with no buddy at all.
    """


@dataclass
class _Message:
    """One in-flight message: the wire copy plus integrity metadata.

    ``payload`` is what travels (and what scheduled faults mutate);
    ``pristine`` is the sender-side retention copy used for
    retransmission; ``crc`` is the CRC32 of the payload as it was sent.
    When no fault struck, ``payload`` *is* ``pristine`` (no extra copy).
    """

    payload: np.ndarray
    pristine: np.ndarray
    crc: int
    dropped: bool = False


class SimChannel:
    """In-memory point-to-point message mailbox with link-level integrity.

    Messages are addressed by ``(source, destination, tag)`` and consumed
    in FIFO order per address (an O(1) ``deque.popleft`` per receive).
    Payload arrays are copied on send so the sender cannot mutate data
    already "on the wire".  Traffic is accounted globally
    (``messages_sent``/``bytes_sent``) and per tag
    (``messages_by_tag``/``bytes_by_tag``) — the weak-scaling benchmark
    reports the per-tag breakdown.

    Parameters
    ----------
    integrity:
        Verify a CRC32 per payload at receive time (default on). A
        corrupted payload is detected and recovered by "retransmission"
        from the sender-side retention copy; a dropped message is
        likewise detected and retransmitted. Both are counted per tag
        (``corrupted_by_tag``/``dropped_by_tag``/
        ``retransmitted_by_tag``). With ``integrity=False`` corruption
        passes through silently and a drop raises :class:`ChannelError`
        — the unprotected-wire baseline the hardening tests compare
        against.

    recv_retries:
        Bounded drain attempts for an empty mailbox before
        :meth:`recv` gives up.  In a lock-step schedule a transient
        ordering hiccup (a post arriving "late") must not masquerade as
        rank death, so the receive re-polls the mailbox up to this many
        times — with an optional exponential ``retry_backoff`` sleep —
        before raising the final :class:`ChannelError`, which names the
        failing link and the receiver's pending-tag inventory.
    retry_backoff:
        Base seconds of the exponential backoff between drain attempts
        (default ``0.0``: re-poll without sleeping, the right choice for
        the in-process simulation where no concurrent producer exists).

    Notes
    -----
    In-flight faults are scheduled with :meth:`schedule_fault` against
    the 1-based *global send ordinal* (the n-th *fault-eligible*
    ``send`` on this channel), which is how the ``payload``-targeted
    fault models address a specific halo message deterministically.
    Checkpoint shipments are sent with ``fault_eligible=False`` so they
    never consume an ordinal — arming a payload fault stays stable
    whether or not buddy checkpointing is on.
    """

    def __init__(
        self,
        integrity: bool = True,
        recv_retries: int = 3,
        retry_backoff: float = 0.0,
    ) -> None:
        self._mailboxes: Dict[Tuple[int, int, str], Deque[_Message]] = {}
        self.integrity = bool(integrity)
        self.recv_retries = int(recv_retries)
        if self.recv_retries < 0:
            raise ValueError("recv_retries must be >= 0")
        self.retry_backoff = float(retry_backoff)
        self._send_ordinal = 0
        self._scheduled: Dict[int, Tuple[str, Tuple[int, ...], int]] = {}
        self._failed: set = set()
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self.messages_corrupted = 0
        self.messages_retransmitted = 0
        self.recv_retry_attempts = 0
        self.messages_by_tag: Dict[str, int] = {}
        self.bytes_by_tag: Dict[str, int] = {}
        self.dropped_by_tag: Dict[str, int] = {}
        self.corrupted_by_tag: Dict[str, int] = {}
        self.retransmitted_by_tag: Dict[str, int] = {}

    # -- liveness --------------------------------------------------------------
    def mark_failed(self, rank: int) -> None:
        """Declare a rank fail-stopped: it no longer posts or answers."""
        self._failed.add(int(rank))

    def revive(self, rank: int) -> None:
        """Clear a rank's failed mark (after recovery rebuilt it)."""
        self._failed.discard(int(rank))

    @property
    def failed_ranks(self) -> frozenset:
        """The ranks currently declared failed."""
        return frozenset(self._failed)

    @property
    def has_failures(self) -> bool:
        return bool(self._failed)

    def check_liveness(self, ranks: Iterable[int]) -> None:
        """Heartbeat round: raise :class:`RankFailure` for a dead rank.

        The lock-step runner calls this before each exchange so a rank
        death is detected even when the topology exchanges no halo
        messages (``halo_width == 0``) — the recv-timeout path alone
        would never fire there.
        """
        for rank in ranks:
            if int(rank) in self._failed:
                raise RankFailure(
                    rank,
                    f"rank {rank} missed its heartbeat: declared failed "
                    f"(fail-stop), recovery required",
                )

    # -- fault surface ---------------------------------------------------------
    def schedule_fault(
        self,
        ordinal: int,
        action: str = "corrupt",
        index: Tuple[int, ...] = (0,),
        bit: int = 0,
    ) -> None:
        """Arm an in-flight fault against the ``ordinal``-th future send.

        ``action`` is ``"corrupt"`` (flip ``bit`` of the payload element
        at flat offset ``index[0]``) or ``"drop"`` (the wire loses the
        message). The fault strikes the in-flight copy only — the
        sender-side retention copy stays pristine, which is what makes
        detect-and-retransmit recovery possible.
        """
        ordinal = int(ordinal)
        if ordinal < 1:
            raise ValueError("send ordinals are 1-based; got ordinal < 1")
        if ordinal <= self._send_ordinal:
            raise ValueError(
                f"send ordinal {ordinal} already passed "
                f"({self._send_ordinal} messages sent)"
            )
        if action not in ("corrupt", "drop"):
            raise ValueError(
                f"unknown in-flight fault action {action!r}; "
                "expected 'corrupt' or 'drop'"
            )
        self._scheduled[ordinal] = (action, tuple(int(i) for i in index), int(bit))

    def _count(self, counters: Dict[str, int], tag: str) -> None:
        counters[tag] = counters.get(tag, 0) + 1

    def send(
        self,
        source: int,
        dest: int,
        tag: str,
        payload: np.ndarray,
        fault_eligible: bool = True,
    ) -> None:
        tag = str(tag)
        key = (int(source), int(dest), tag)
        pristine = np.array(payload, copy=True)
        crc = zlib.crc32(pristine.tobytes())
        fault = None
        if fault_eligible:
            # Only fault-eligible sends (the halo stream) advance the
            # scheduled-fault ordinal space; checkpoint shipments travel
            # outside it so PR 8's ordinal arithmetic stays stable.
            self._send_ordinal += 1
            fault = self._scheduled.pop(self._send_ordinal, None)
        wire = pristine
        dropped = False
        if fault is not None:
            action, index, bit = fault
            if action == "drop":
                dropped = True
                self.messages_dropped += 1
                self._count(self.dropped_by_tag, tag)
            else:
                offset = index[0] if index else 0
                if not 0 <= offset < pristine.size:
                    raise ValueError(
                        f"in-flight corruption offset {offset} out of range "
                        f"for a payload of {pristine.size} elements "
                        f"(tag {tag!r}, rank {source} -> rank {dest})"
                    )
                wire = pristine.copy()
                from repro.faults.bitflip import flip_bit_in_array

                flip_bit_in_array(wire.reshape(-1), (offset,), bit)
                self.messages_corrupted += 1
                self._count(self.corrupted_by_tag, tag)
        self._mailboxes.setdefault(key, deque()).append(
            _Message(payload=wire, pristine=pristine, crc=crc, dropped=dropped)
        )
        nbytes = int(pristine.nbytes)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.messages_by_tag[tag] = self.messages_by_tag.get(tag, 0) + 1
        self.bytes_by_tag[tag] = self.bytes_by_tag.get(tag, 0) + nbytes

    def recv(self, source: int, dest: int, tag: str) -> np.ndarray:
        tag = str(tag)
        source, dest = int(source), int(dest)
        key = (source, dest, tag)
        queue = self._mailboxes.get(key)
        if not queue and source in self._failed:
            raise RankFailure(
                source,
                f"no message from rank {source} to rank {dest} with tag "
                f"{tag!r}: the source rank is declared failed (fail-stop), "
                f"recovery required",
            )
        if not queue:
            # Bounded retry/backoff drain: a transient ordering hiccup
            # must not masquerade as rank death.  In this in-process
            # simulation nothing can post concurrently, but the drain
            # models (and its counters expose) what a real progress
            # engine would do before escalating.
            for attempt in range(self.recv_retries):
                self.recv_retry_attempts += 1
                if self.retry_backoff > 0:
                    _time.sleep(self.retry_backoff * (2 ** attempt))
                queue = self._mailboxes.get(key)
                if queue:
                    break
        if not queue:
            pending = self.pending_tags(dest)
            inventory = (
                ", ".join(f"{t!r}: {n}" for t, n in sorted(pending.items()))
                if pending
                else "nothing pending"
            )
            raise ChannelError(
                f"no message from rank {source} to rank {dest} with tag "
                f"{tag!r} after {self.recv_retries} drain attempts: the "
                f"mailbox is empty (was the halo posted this iteration?); "
                f"link rank {source} -> rank {dest}, pending tags for rank "
                f"{dest}: {inventory}"
            )
        msg = queue.popleft()
        if msg.dropped:
            if not self.integrity:
                raise ChannelError(
                    f"no message from rank {source} to rank {dest} with tag "
                    f"{tag!r}: the payload was dropped in flight and "
                    f"integrity tracking is disabled (no retransmission)"
                )
            self.messages_retransmitted += 1
            self._count(self.retransmitted_by_tag, tag)
            return msg.pristine
        if self.integrity and msg.payload is not msg.pristine:
            if zlib.crc32(msg.payload.tobytes()) != msg.crc:
                self.messages_retransmitted += 1
                self._count(self.retransmitted_by_tag, tag)
                return msg.pristine
        return msg.payload

    def pending(self) -> int:
        """Number of messages posted but not yet received."""
        return sum(len(q) for q in self._mailboxes.values())

    def pending_tags(self, dest: Optional[int] = None) -> Dict[str, int]:
        """Pending message counts per tag (optionally for one receiver).

        This is the inventory the empty-mailbox :class:`ChannelError`
        reports, so a failed receive names what *is* waiting — usually
        enough to spot a mis-ordered post or a wrong tag at a glance.
        """
        counts: Dict[str, int] = {}
        for (src, d, tag), queue in self._mailboxes.items():
            if dest is not None and d != int(dest):
                continue
            if queue:
                counts[tag] = counts.get(tag, 0) + len(queue)
        return counts

    def purge(self) -> int:
        """Drop every pending message; returns how many were discarded.

        Recovery calls this after a rank failure so halo posts of the
        aborted iteration cannot leak into the replay.
        """
        purged = self.pending()
        self._mailboxes.clear()
        return purged

    def traffic(self) -> Dict[str, object]:
        """Snapshot of the traffic counters (for benchmark reports)."""
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "messages_dropped": self.messages_dropped,
            "messages_corrupted": self.messages_corrupted,
            "messages_retransmitted": self.messages_retransmitted,
            "recv_retry_attempts": self.recv_retry_attempts,
            "messages_by_tag": dict(self.messages_by_tag),
            "bytes_by_tag": dict(self.bytes_by_tag),
            "dropped_by_tag": dict(self.dropped_by_tag),
            "corrupted_by_tag": dict(self.corrupted_by_tag),
            "retransmitted_by_tag": dict(self.retransmitted_by_tag),
        }


@dataclass
class RankCheckpoint:
    """One rank's committed state at a checkpoint iteration.

    ``interior`` is the rank's domain block (ghost slabs are rebuilt
    before first read after a restore, so they are not captured);
    ``protector_state`` is :meth:`OnlineABFT.state_snapshot` output (or
    ``None`` for unprotected ranks).  ``checksum``/``checksum_dup`` are
    an independently accumulated ``np.sum`` integrity vector over the
    interior plus its self-check duplicate, verified via the PR 8
    metadata rule before the checkpoint is ever restored: a duplicate
    mismatch means the *metadata* was struck and is recomputed from the
    still-healthy domain (counted as a repair); a domain/checksum
    mismatch with agreeing duplicates means the *payload* was struck
    and restoring raises :class:`CheckpointCorrupt`.
    """

    iteration: int
    interior: np.ndarray
    checksum: np.ndarray
    checksum_dup: np.ndarray
    protector_state: Optional[dict]


def _checkpoint_checksum(interior: np.ndarray) -> np.ndarray:
    """Integrity vector of a checkpoint payload.

    Deliberately a plain ``np.sum`` in float64 along axis 0 — computed
    identically at snapshot and verify time, independent of any backend
    (fused-kernel checksums use a different accumulation order and are
    not bitwise-comparable).
    """
    return np.sum(interior, axis=0, dtype=np.float64)


@dataclass
class RecoveryStats:
    """Per-run fail-stop accounting surfaced by the distributed runner."""

    checkpoints_taken: int = 0
    checkpoint_messages: int = 0
    checkpoint_bytes: int = 0
    checkpoint_metadata_repairs: int = 0
    rank_failures: int = 0
    ranks_rebuilt: int = 0
    rollbacks: int = 0
    replayed_iterations: int = 0
    max_rollback_depth: int = 0
    recovery_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_messages": self.checkpoint_messages,
            "checkpoint_bytes": self.checkpoint_bytes,
            "checkpoint_metadata_repairs": self.checkpoint_metadata_repairs,
            "rank_failures": self.rank_failures,
            "ranks_rebuilt": self.ranks_rebuilt,
            "rollbacks": self.rollbacks,
            "replayed_iterations": self.replayed_iterations,
            "max_rollback_depth": self.max_rollback_depth,
            "recovery_seconds": self.recovery_seconds,
        }


class SimRank:
    """One simulated rank: its persistent buffer pair, protector and links.

    The rank's block lives in a
    :class:`~repro.stencil.doublebuffer.DoubleBufferedGrid` whose
    distributed-axis ghost slabs are externally managed: the runner
    ingests neighbour halo payloads (or synthesises the closed boundary
    condition at the domain edge) straight into the front buffer before
    every sweep, and the remaining axes refresh from the boundary spec
    inside the backend-owned step.
    """

    def __init__(
        self,
        rank: int,
        block: np.ndarray,
        constant: Optional[np.ndarray],
        protector: Optional[OnlineABFT],
        lo_neighbor: Optional[int],
        hi_neighbor: Optional[int],
        global_offset: int,
        radius,
        boundary: BoundarySpec,
        axis: int = DISTRIBUTED_AXIS,
    ) -> None:
        self.rank = int(rank)
        self.axis = int(axis)
        external = (self.axis,) if radius[self.axis] > 0 else ()
        self.buffers = DoubleBufferedGrid(
            block, radius, boundary, external_axes=external
        )
        self.constant = constant
        self.protector = protector
        self.lo_neighbor = lo_neighbor
        self.hi_neighbor = hi_neighbor
        self.global_offset = int(global_offset)
        self.reports: List[StepReport] = []
        #: Fail-stop state: a dead rank posts and answers nothing until
        #: recovery rebuilds it.
        self.alive = True
        #: The rank's own last committed checkpoint (survivor rollback).
        self.own_checkpoint: Optional[RankCheckpoint] = None
        #: Buddy copies this rank holds for its partner(s), keyed by the
        #: owner rank — what recovery rebuilds a dead partner from.
        self.buddy_store: Dict[int, RankCheckpoint] = {}

    @property
    def interior(self) -> np.ndarray:
        """Live view of the rank's current block (front-buffer interior).

        Mutations (injected faults, ABFT corrections) land directly in
        the persistent pair and are picked up by the next halo post and
        ghost refresh.
        """
        return self.buffers.interior

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.buffers.interior_shape


class DistributedStencilRunner:
    """Lock-step driver for a 1D rank decomposition with halo exchange.

    Parameters
    ----------
    grid:
        The global problem definition; its current state is scattered
        across the ranks at construction time.
    n_ranks:
        Number of simulated ranks; the domain is block-distributed along
        ``axis``.
    protect:
        Protect every rank's block with its own OnlineABFT instance.
    backend:
        Compute backend driving every rank's fused step (registry name
        or instance; ``None`` follows the process default).
    axis:
        Decomposition axis (default 0).  Any axis works — including the
        orderings where the external axis follows refreshed axes, which
        the compiled backend handles like any other layout.
    block_steps:
        Temporal blocking factor.  When eligible, every rank's buffer
        pair carries a deep ghost slab of ``block_steps * radius`` along
        the distributed axis, halos are exchanged once per ``block_steps``
        sweeps, and each exchange drives the backend's fused k-step
        kernel (trapezoidal tile shrink across the deep halo) —
        ``block_steps``\\ x fewer messages and kernel launches for a
        bit-identical trajectory.  The effective factor
        (:attr:`effective_block_steps`) is capped to 1 — with the cause
        recorded in :attr:`block_cap_reason` — when blocking cannot
        preserve semantics: per-rank protection (OnlineABFT verifies
        every step), a non-periodic boundary along the distributed axis
        (edge ranks must re-synthesise ghosts every sweep), a per-point
        constant (cannot be trapezoid-indexed across the deep halo), or
        a rank block thinner than the deep halo.  Injection hooks force
        the single-step path at :meth:`run` time.
    checkpoint_period:
        Enable buddy checkpointing with this period (iterations between
        checkpoints).  ``None`` (default) leaves checkpointing **off**
        until a crash-capable injector arrives, at which point it
        auto-enables at the default period — the ABFT detection period
        Δ (:data:`DETECTION_PERIOD`).  Either way the period is rounded
        up to a multiple of :attr:`effective_block_steps` so checkpoints
        land on temporal-blocking window boundaries.
    abft_kwargs:
        Extra keyword arguments for each rank's protector.

    Notes
    -----
    Each iteration runs the zero-copy rank lifecycle: post strips →
    ingest halos in place → backend-owned fused step (partial-axis
    ghost refresh + sweep into the back buffer + per-rank checksums in
    one call) → swap → verify.  In fault-free operation the verified
    checksum is produced by the sweep itself
    (:meth:`OnlineABFT.process` receives it as
    ``precomputed_checksums``); with an injection hook the checksum is
    recomputed after the hook runs, preserving the paper's injection
    semantics exactly as the serial protector does.
    """

    def __init__(
        self,
        grid: GridBase,
        n_ranks: int = 4,
        protect: bool = True,
        backend: BackendLike = None,
        axis: int = DISTRIBUTED_AXIS,
        block_steps: int = 1,
        checkpoint_period: Optional[int] = None,
        **abft_kwargs,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        block_steps = int(block_steps)
        if block_steps < 1:
            raise ValueError("block_steps must be >= 1")
        if not 0 <= int(axis) < grid.ndim:
            raise ValueError(
                f"axis {axis} out of range for a {grid.ndim}-d grid"
            )
        self.axis = int(axis)
        self.spec: StencilSpec = grid.spec
        self.boundary: BoundarySpec = grid.boundary
        self.radius = grid.spec.radius()
        self.dtype = grid.dtype
        self.global_shape = grid.shape
        self.iteration = grid.iteration
        self.channel = SimChannel()
        self.n_ranks = int(n_ranks)
        self.backend_spec = backend
        self._protect = bool(protect)
        self._abft_kwargs = dict(abft_kwargs)

        axis_bc = self.boundary.axis(self.axis)
        bounds = partition_extent(grid.shape[self.axis], self.n_ranks)

        # Temporal-blocking eligibility: cap k to 1 (recording why)
        # whenever a deep-halo blocked schedule could not reproduce the
        # single-step trajectory bit for bit.
        width = self.radius[self.axis]
        min_extent = min(stop - start for start, stop in bounds)
        reason: Optional[str] = None
        if block_steps > 1:
            if protect:
                reason = (
                    "per-rank OnlineABFT verifies every step; blocked"
                    " sweeps would skip its detection points"
                )
            elif width > 0 and not axis_bc.is_periodic:
                reason = (
                    f"{axis_bc.kind!r} boundary along distributed axis"
                    f" {self.axis}: edge ranks must re-synthesise ghosts"
                    " every sweep"
                )
            elif width > 0 and grid.constant is not None:
                reason = (
                    "a per-point constant cannot be trapezoid-indexed"
                    " across the deep external halo"
                )
            elif width > 0 and min_extent < block_steps * width:
                reason = (
                    f"smallest rank block extent {min_extent} is thinner"
                    f" than the deep halo k*r = {block_steps * width}"
                )
        self.block_steps = block_steps
        self.block_cap_reason = reason
        self.effective_block_steps = 1 if reason is not None else block_steps
        #: Ghost-slab depth along the distributed axis (= k * radius).
        self.halo_width = self.effective_block_steps * width
        rank_radius = list(self.radius)
        rank_radius[self.axis] = self.halo_width
        self.rank_radius = tuple(rank_radius)

        # Buddy checkpointing: each rank ships its snapshot to the next
        # rank around the ring.  Off by default (zero overhead, zero
        # extra allocations for SDC-only runs); enabled explicitly via
        # checkpoint_period / enable_checkpointing, or automatically
        # when a crash-capable injector shows up.
        self.recovery = RecoveryStats()
        self.buddy_of: Dict[int, int] = (
            {r: (r + 1) % self.n_ranks for r in range(self.n_ranks)}
            if self.n_ranks > 1
            else {}
        )
        self._checkpointing = False
        self._last_checkpoint_iteration = self.iteration
        self.checkpoint_period = self._align_period(
            DETECTION_PERIOD if checkpoint_period is None else checkpoint_period
        )
        if checkpoint_period is not None:
            self._checkpointing = True

        self.ranks: List[SimRank] = []
        for r, (start, stop) in enumerate(bounds):
            sl = [slice(None)] * grid.ndim
            sl[self.axis] = slice(start, stop)
            block = np.array(grid.u[tuple(sl)], copy=True)
            const = None
            if grid.constant is not None:
                const = np.array(grid.constant[tuple(sl)], copy=True)
            if axis_bc.is_periodic:
                lo = (r - 1) % self.n_ranks
                hi = (r + 1) % self.n_ranks
            else:
                lo = r - 1 if r > 0 else None
                hi = r + 1 if r < self.n_ranks - 1 else None
            protector = None
            if protect:
                protector = OnlineABFT(
                    self.spec,
                    self.boundary,
                    block.shape,
                    dtype=self.dtype,
                    constant=const,
                    backend=backend,
                    **abft_kwargs,
                )
            self.ranks.append(
                SimRank(
                    rank=r,
                    block=block,
                    constant=const,
                    protector=protector,
                    lo_neighbor=lo,
                    hi_neighbor=hi,
                    global_offset=start,
                    radius=self.rank_radius,
                    boundary=self.boundary,
                    axis=self.axis,
                )
            )
        # Layout-aware warmup: compile (or load from the on-disk cache)
        # the exact step kernels the ranks will run — the distributed
        # axis is external (halo ingested from neighbours), every other
        # axis refreshes from the boundary condition.
        external = (self.axis,) if self.radius[self.axis] > 0 else ()
        self.backend.warmup(
            self.spec,
            boundary=self.boundary,
            dtype=self.dtype,
            radius=self.rank_radius,
            external_axes=external,
            block_steps=self.effective_block_steps,
        )
        if self._checkpointing:
            self._take_checkpoints()

    @property
    def backend(self):
        """The resolved compute backend (tracks the process default)."""
        return get_backend(self.backend_spec)

    # -- buddy checkpointing --------------------------------------------------
    def _align_period(self, period: int) -> int:
        """Round a checkpoint period up to a blocked-window boundary."""
        period = int(period)
        if period < 1:
            raise ValueError("checkpoint_period must be >= 1")
        k = self.effective_block_steps
        if period % k:
            period = ((period // k) + 1) * k
        return period

    def enable_checkpointing(self, period: Optional[int] = None) -> None:
        """Turn buddy checkpointing on (idempotent) and commit checkpoint 0.

        ``period=None`` keeps the period resolved at construction (the
        ABFT detection period by default).  The initial checkpoint is
        taken immediately so a crash in the very first period can roll
        back to the enable-time state.
        """
        if period is not None:
            self.checkpoint_period = self._align_period(period)
        if self._checkpointing:
            return
        if self.n_ranks < 2:
            raise RecoveryError(
                "buddy checkpointing needs n_ranks >= 2: a sole rank has "
                "no partner to ship its snapshot to"
            )
        self._checkpointing = True
        self._take_checkpoints()

    def _pack_checkpoint_meta(self, ckpt: RankCheckpoint) -> np.ndarray:
        """Flatten a checkpoint's metadata into one float64 wire vector.

        Layout: ``[iteration, has_protector]``, the integrity checksum,
        its duplicate, then (when protected) the four protector counters
        followed by per-axis ``[present, *prev_cs.flat]`` sections.  The
        receiver knows the owner's block shape and protector settings,
        so the vector unpacks without any side channel.
        """
        parts: List[np.ndarray] = [
            np.array(
                [float(ckpt.iteration), 1.0 if ckpt.protector_state else 0.0],
                dtype=np.float64,
            ),
            np.asarray(ckpt.checksum, dtype=np.float64).ravel(),
            np.asarray(ckpt.checksum_dup, dtype=np.float64).ravel(),
        ]
        state = ckpt.protector_state
        if state:
            parts.append(np.array(state["counters"], dtype=np.float64))
            for axis in (0, 1):
                cs = state["prev_cs"].get(axis)
                if cs is None:
                    parts.append(np.zeros(1, dtype=np.float64))
                else:
                    parts.append(
                        np.concatenate(
                            [
                                np.ones(1, dtype=np.float64),
                                np.asarray(cs, dtype=np.float64).ravel(),
                            ]
                        )
                    )
        return np.concatenate(parts)

    def _unpack_checkpoint_meta(
        self, meta: np.ndarray, owner: SimRank, interior: np.ndarray
    ) -> RankCheckpoint:
        """Rebuild a :class:`RankCheckpoint` from its wire vector."""
        meta = np.asarray(meta, dtype=np.float64).ravel()
        iteration = int(meta[0])
        has_protector = bool(meta[1])
        shape = interior.shape
        cs_len = int(np.prod(shape[1:], dtype=np.int64)) if len(shape) > 1 else 1
        cs_shape = shape[1:] if len(shape) > 1 else ()
        pos = 2
        checksum = meta[pos : pos + cs_len].reshape(cs_shape).copy()
        pos += cs_len
        checksum_dup = meta[pos : pos + cs_len].reshape(cs_shape).copy()
        pos += cs_len
        state: Optional[dict] = None
        if has_protector:
            counters = tuple(int(c) for c in meta[pos : pos + 4])
            pos += 4
            prev_cs: Dict[int, Optional[np.ndarray]] = {}
            cs_dtype = np.float64
            if owner.protector is not None:
                cs_dtype = owner.protector.checksum_dtype or owner.protector.dtype
            for axis in (0, 1):
                present = bool(meta[pos])
                pos += 1
                if not present:
                    prev_cs[axis] = None
                    continue
                axis_shape = tuple(
                    n for ax, n in enumerate(shape) if ax != axis
                ) or (1,)
                n = int(np.prod(axis_shape, dtype=np.int64))
                prev_cs[axis] = (
                    meta[pos : pos + n].reshape(axis_shape).astype(cs_dtype)
                )
                pos += n
            state = {"prev_cs": prev_cs, "counters": counters}
        return RankCheckpoint(
            iteration=iteration,
            interior=interior,
            checksum=checksum,
            checksum_dup=checksum_dup,
            protector_state=state,
        )

    def _take_checkpoints(self) -> None:
        """Commit a checkpoint on every rank and ship the buddy copies.

        Each rank snapshots its interior + protector state locally (the
        survivor-rollback copy) and sends a copy around the buddy ring
        over the shared channel — two messages per rank (domain payload
        tag ``"ckpt"``, packed metadata tag ``"ckpt_meta"``), counted
        in :meth:`SimChannel.traffic` like any other traffic but *not*
        fault-eligible, so halo payload-fault ordinals never shift.
        """
        stats = self.recovery
        for rank in self.ranks:
            interior = rank.buffers.snapshot_interior()
            checksum = _checkpoint_checksum(interior)
            state = (
                rank.protector.state_snapshot()
                if rank.protector is not None
                else None
            )
            ckpt = RankCheckpoint(
                iteration=self.iteration,
                interior=interior,
                checksum=checksum,
                checksum_dup=checksum.copy(),
                protector_state=state,
            )
            rank.own_checkpoint = ckpt
            buddy = self.buddy_of.get(rank.rank)
            if buddy is not None:
                meta = self._pack_checkpoint_meta(ckpt)
                self.channel.send(
                    rank.rank, buddy, CKPT_TAG, interior, fault_eligible=False
                )
                self.channel.send(
                    rank.rank, buddy, CKPT_META_TAG, meta, fault_eligible=False
                )
                stats.checkpoint_messages += 2
                stats.checkpoint_bytes += int(interior.nbytes) + int(meta.nbytes)
        # Drain the ring: every rank stores the copy its partner shipped.
        if self.buddy_of:
            for rank in self.ranks:
                src = (rank.rank - 1) % self.n_ranks
                payload = self.channel.recv(src, rank.rank, CKPT_TAG)
                meta = self.channel.recv(src, rank.rank, CKPT_META_TAG)
                rank.buddy_store[src] = self._unpack_checkpoint_meta(
                    meta, self.ranks[src], payload
                )
        stats.checkpoints_taken += 1
        self._last_checkpoint_iteration = self.iteration

    def _maybe_checkpoint(self) -> None:
        if not self._checkpointing:
            return
        if (
            self.iteration - self._last_checkpoint_iteration
            >= self.checkpoint_period
        ):
            self._take_checkpoints()

    def _verify_checkpoint(self, ckpt: RankCheckpoint, owner: int) -> None:
        """Validate a checkpoint before restoring it (PR 8 self-check rule).

        Disagreeing checksum duplicates mean the metadata itself was
        struck while the domain payload is still trusted: recompute the
        vector from the payload and count a repair.  Agreeing duplicates
        that contradict the payload mean the *payload* was struck:
        restoring it would resurrect corruption, so raise
        :class:`CheckpointCorrupt`.
        """
        if not np.array_equal(ckpt.checksum, ckpt.checksum_dup):
            self.recovery.checkpoint_metadata_repairs += 1
            recomputed = _checkpoint_checksum(ckpt.interior)
            ckpt.checksum = recomputed
            ckpt.checksum_dup = recomputed.copy()
            return
        recomputed = _checkpoint_checksum(ckpt.interior)
        if not np.array_equal(recomputed, ckpt.checksum):
            raise CheckpointCorrupt(
                f"checkpoint of rank {owner} at iteration {ckpt.iteration} "
                f"fails its integrity check: the domain payload disagrees "
                f"with the (self-consistent) checksum vector; refusing to "
                f"restore corrupted state"
            )

    def _rebuild_rank(self, r: int, ckpt: RankCheckpoint) -> None:
        """Re-instantiate a dead rank from its buddy's checkpoint copy.

        The replacement (a spare in real MPI) inherits the topology of
        the old rank — neighbours, offset, constant block, which are
        problem definition, not lost state — and restores domain +
        protector state from the verified checkpoint.  Its ghost slabs
        start cold and are re-warmed before first read: the distributed
        axis by the next halo ingest, every other axis by the backend's
        per-step boundary refresh.
        """
        old = self.ranks[r]
        protector = None
        if old.protector is not None:
            protector = OnlineABFT(
                self.spec,
                self.boundary,
                ckpt.interior.shape,
                dtype=self.dtype,
                constant=old.constant,
                backend=self.backend_spec,
                **self._abft_kwargs,
            )
            if ckpt.protector_state is not None:
                protector.state_restore(ckpt.protector_state)
        rebuilt = SimRank(
            rank=r,
            block=ckpt.interior,
            constant=old.constant,
            protector=protector,
            lo_neighbor=old.lo_neighbor,
            hi_neighbor=old.hi_neighbor,
            global_offset=old.global_offset,
            radius=self.rank_radius,
            boundary=self.boundary,
            axis=self.axis,
        )
        # Keep the globally aggregated report history (truncated to the
        # checkpoint) — the runner owns it, not the dead process.
        rebuilt.reports = [
            rep for rep in old.reports if rep.iteration <= ckpt.iteration
        ]
        rebuilt.own_checkpoint = ckpt
        self.ranks[r] = rebuilt

    def _recover(self, failure: RankFailure, inject=None) -> None:
        """Roll back to the last committed checkpoint and rebuild the dead.

        The full local-recovery protocol: purge aborted traffic, rebuild
        every failed rank from its buddy's verified copy, roll survivors
        back to their own verified snapshots (domain + protector
        checksums *and* counters), truncate the report history, re-arm
        SDC plans inside the replayed window, and re-commit a fresh
        checkpoint so the ring is protected again before the replay.
        """
        t0 = perf_counter()
        stats = self.recovery
        failed = sorted(self.channel.failed_ranks)
        if not failed:
            raise failure
        if not self._checkpointing:
            raise RecoveryError(
                f"rank(s) {failed} failed but buddy checkpointing was never "
                f"enabled — no committed state to roll back to"
            ) from failure
        stats.rank_failures += len(failed)
        completed = self.iteration
        self.channel.purge()
        for r in failed:
            buddy = self.buddy_of.get(r)
            if buddy is None:
                raise RecoveryError(
                    f"rank {r} failed but has no buddy (n_ranks == 1)"
                ) from failure
            if buddy in failed:
                raise RecoveryError(
                    f"rank {r} and its buddy rank {buddy} both failed in "
                    f"the same checkpoint interval: the in-memory copy is "
                    f"gone (buddy checkpointing tolerates one failure per "
                    f"ring segment)"
                ) from failure
            ckpt = self.ranks[buddy].buddy_store.get(r)
            if ckpt is None:
                raise RecoveryError(
                    f"rank {buddy} holds no buddy checkpoint for dead "
                    f"rank {r}"
                ) from failure
            self._verify_checkpoint(ckpt, owner=r)
            self._rebuild_rank(r, ckpt)
            self.channel.revive(r)
            stats.ranks_rebuilt += 1
        ckpt_iteration = self._last_checkpoint_iteration
        for rank in self.ranks:
            if rank.rank in failed:
                continue
            own = rank.own_checkpoint
            if own is None:
                raise RecoveryError(
                    f"surviving rank {rank.rank} holds no checkpoint to "
                    f"roll back to"
                ) from failure
            self._verify_checkpoint(own, owner=rank.rank)
            rank.buffers.restore_interior(own.interior)
            if rank.protector is not None and own.protector_state is not None:
                rank.protector.state_restore(own.protector_state)
            rank.reports = [
                rep for rep in rank.reports if rep.iteration <= own.iteration
            ]
        depth = max(0, completed - ckpt_iteration)
        stats.rollbacks += 1
        stats.replayed_iterations += depth
        stats.max_rollback_depth = max(stats.max_rollback_depth, depth)
        self.iteration = ckpt_iteration
        # Soft errors inside the replayed window are part of the
        # trajectory and must strike again; crashes stay consumed.
        rewind = getattr(inject, "rewind", None)
        if rewind is not None:
            rewind(ckpt_iteration)
        # Re-commit immediately: the ring lost the copies the dead rank
        # held for its partner, so re-establish full protection before
        # replaying.
        self._take_checkpoints()
        stats.recovery_seconds += perf_counter() - t0

    # -- halo exchange -------------------------------------------------------------
    def _post_halos(self) -> None:
        width = self.halo_width
        if width == 0:
            return
        for rank in self.ranks:
            if not rank.alive:
                # Fail-stop: a dead rank posts nothing.  Its neighbours'
                # receives (or the heartbeat round) surface the failure.
                continue
            interior = rank.interior
            if rank.lo_neighbor is not None:
                strip = boundary_strip(interior, self.axis, "low", width)
                self.channel.send(rank.rank, rank.lo_neighbor, "to_hi", strip)
            if rank.hi_neighbor is not None:
                strip = boundary_strip(interior, self.axis, "high", width)
                self.channel.send(rank.rank, rank.hi_neighbor, "to_lo", strip)

    def _ingest_halos(self, rank: SimRank) -> None:
        """Write halo messages / edge boundary straight into the front buffer.

        Neighbour payloads land in the distributed-axis ghost slabs of
        the rank's persistent front buffer (no concatenation, no fresh
        padded block); domain-edge sides synthesise the closed boundary
        condition in place.  The remaining axes' ghost corners are then
        rebuilt over these slabs by the backend's partial-axis refresh
        during the step, matching the serial ``pad_array`` order
        bit for bit.
        """
        width = self.halo_width
        if width == 0:
            return
        front = rank.buffers.front
        axis_bc = self.boundary.axis(self.axis)
        if rank.lo_neighbor is not None:
            payload = self.channel.recv(rank.lo_neighbor, rank.rank, "to_lo")
            ingest_halo(front, self.rank_radius, self.axis, "low", payload)
        else:
            synthesize_ghost_into(
                front, self.rank_radius, self.axis, "low", axis_bc
            )
        if rank.hi_neighbor is not None:
            payload = self.channel.recv(rank.hi_neighbor, rank.rank, "to_hi")
            ingest_halo(front, self.rank_radius, self.axis, "high", payload)
        else:
            synthesize_ghost_into(
                front, self.rank_radius, self.axis, "high", axis_bc
            )

    # -- stepping --------------------------------------------------------------------
    def step(self, inject=None) -> List[StepReport]:
        """One distributed sweep: exchange halos, sweep, verify per rank.

        Self-recovering: a :class:`RankFailure` raised mid-step triggers
        buddy-checkpoint recovery and the rolled-back window is replayed
        until this step's iteration is (re-)committed.  The returned
        reports are the final committed ones for the step.
        """
        if (
            inject is not None
            and getattr(inject, "has_crash_plans", False)
            and not self._checkpointing
        ):
            self.enable_checkpointing()
        start_counts = [len(rank.reports) for rank in self.ranks]
        self._advance_to(self.iteration + 1, inject)
        return self._collect_reports(start_counts[0])

    def _advance_to(self, target: int, inject=None) -> None:
        """Advance committed iterations to ``target``, recovering on failure."""
        attempts = 0
        while self.iteration < target:
            try:
                self._step_once(inject)
            except RankFailure as failure:
                attempts += 1
                if attempts > self.n_ranks:
                    raise RecoveryError(
                        f"giving up after {attempts} recovery attempts "
                        f"while advancing to iteration {target}"
                    ) from failure
                self._recover(failure, inject)

    def _step_once(self, inject=None) -> None:
        """One lock-step distributed sweep in three phases.

        Phase 1 delivers due fail-stop plans, runs the heartbeat round
        and posts every live rank's strips; phase 2 ingests halos (and
        fires ghost hooks) on every rank; phase 3 sweeps + verifies per
        rank.  Ranks only read their *own* buffers during phase 3, so
        the phase split is bit-identical to the historical interleaved
        loop — and it guarantees a failure is detected before any rank
        has swept, keeping recovery a pure rollback.
        """
        if inject is not None:
            crash_hook = getattr(inject, "apply_crashes", None)
            if crash_hook is not None:
                crash_hook(self, self.iteration + 1)
        if self.channel.has_failures:
            self.channel.check_liveness(range(self.n_ranks))
        self._post_halos()
        self.iteration += 1
        backend = self.backend

        # Region-targeted hooks may corrupt a just-ingested ghost slab —
        # after halo ingestion, before the sweep reads it.
        ghost_hook = getattr(inject, "inject_ghosts", None)

        for rank in self.ranks:
            self._ingest_halos(rank)
            if ghost_hook is not None:
                ghost_hook(self, self.iteration, rank)

        for rank in self.ranks:
            protector = rank.protector
            if protector is not None and inject is None:
                # Fault-free fast path: the fused backend step produces
                # the rank's verified checksum(s) while sweeping.
                src_padded, _, checksums = rank.buffers.step(
                    backend,
                    self.spec,
                    constant=rank.constant,
                    axes=protector.verify_axes(),
                    checksum_dtype=protector.checksum_dtype,
                )
                rank.buffers.swap()
                report = protector.process(
                    rank.interior,
                    src_padded,
                    self.iteration,
                    precomputed_checksums=checksums,
                )
            else:
                src_padded, _, _ = rank.buffers.step(
                    backend, self.spec, constant=rank.constant
                )
                rank.buffers.swap()
                if inject is not None:
                    inject(self, self.iteration, rank)
                if protector is not None:
                    # The checksum must reflect the possibly corrupted
                    # block, so it is recomputed inside ``process``.
                    report = protector.process(
                        rank.interior, src_padded, self.iteration
                    )
                else:
                    report = StepReport(
                        iteration=self.iteration, detection_performed=False
                    )
            rank.reports.append(report)
        self._maybe_checkpoint()

    def _collect_reports(self, start_index: int) -> List[StepReport]:
        """Iteration-major reports committed since ``start_index``.

        Assembled from the per-rank histories rather than accumulated
        on the fly: recovery truncates and replays those histories, so
        only the committed tail is authoritative.
        """
        reports: List[StepReport] = []
        if not self.ranks:
            return reports
        for i in range(start_index, len(self.ranks[0].reports)):
            for rank in self.ranks:
                reports.append(rank.reports[i])
        return reports

    def _blocked_step(self, k: int) -> List[StepReport]:
        """One deep-halo exchange driving ``k`` fused sweeps per rank.

        Each rank posts a ``k * radius``-deep strip, ingests its
        neighbours' strips into the deep ghost slabs and runs the
        backend's k-step kernel: the distributed axis shrinks
        trapezoidally across the deep halo while every other axis
        refreshes from the boundary spec each sub-step.  Only reachable
        for unprotected runs, so the per-iteration reports are
        synthesised (``detection_performed=False``), iteration-major to
        match the shape of ``k`` single steps.
        """
        self._post_halos()
        backend = self.backend
        start = self.iteration
        self.iteration += k
        for rank in self.ranks:
            self._ingest_halos(rank)
            rank.buffers.multi_step(
                backend, self.spec, k, constant=rank.constant
            )
        reports: List[StepReport] = []
        for it in range(start + 1, start + k + 1):
            for rank in self.ranks:
                report = StepReport(iteration=it, detection_performed=False)
                rank.reports.append(report)
                reports.append(report)
        # Chunk ends are the only legal checkpoint sites of a blocked
        # schedule (period alignment guarantees due points land here).
        self._maybe_checkpoint()
        return reports

    def run(self, iterations: int, inject=None) -> List[StepReport]:
        """Advance ``iterations`` distributed sweeps.

        With an eligible ``block_steps`` and no injection hook the loop
        advances in fused k-step chunks (one halo exchange per chunk);
        injection hooks force the per-iteration :meth:`step` path so
        faults land on exact iteration boundaries.  Injectors carrying
        fail-stop plans auto-enable buddy checkpointing before the first
        sweep, and every committed iteration is guarded by the
        self-recovering step path.
        """
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        if (
            inject is not None
            and getattr(inject, "has_crash_plans", False)
            and not self._checkpointing
        ):
            self.enable_checkpointing()
        all_reports: List[StepReport] = []
        k = self.effective_block_steps if inject is None else 1
        remaining = iterations
        while remaining > 0:
            if k <= 1 or remaining == 1:
                all_reports.extend(self.step(inject=inject))
                remaining -= 1
            else:
                chunk = min(k, remaining)
                all_reports.extend(self._blocked_step(chunk))
                remaining -= chunk
        return all_reports

    # -- gather / bookkeeping -----------------------------------------------------------
    def gather(self) -> np.ndarray:
        """Assemble the global domain from all rank blocks."""
        return np.concatenate(
            [rank.interior for rank in self.ranks], axis=self.axis
        )

    def total_detected(self) -> int:
        return sum(
            r.protector.total_detections for r in self.ranks if r.protector is not None
        )

    def total_corrected(self) -> int:
        return sum(
            r.protector.total_corrections for r in self.ranks if r.protector is not None
        )

    def rank_of_global_index(self, index) -> Tuple[int, Tuple[int, ...]]:
        """Map a global domain index to ``(rank, local index)``."""
        index = tuple(int(i) for i in index)
        pos = index[self.axis]
        for rank in self.ranks:
            size = rank.shape[self.axis]
            if rank.global_offset <= pos < rank.global_offset + size:
                local = list(index)
                local[self.axis] = pos - rank.global_offset
                return rank.rank, tuple(local)
        raise ValueError(f"index {index} outside the global domain")
