"""Simulated message-passing (distributed-memory) execution.

The paper argues its ABFT scheme applies unchanged to distributed-memory
systems because every rank protects its own block with its own checksum
vectors. Real MPI is not available in this environment, so this module
provides a small deterministic stand-in:

* :class:`SimChannel` — an in-memory mailbox with ``send``/``recv``
  keyed by (source, destination, tag); payloads are copied on send, so
  ranks cannot share memory by accident.
* :class:`SimRank` — one rank's state: its contiguous block of the
  domain (split along axis 0), its constant-term block and its own
  :class:`~repro.core.online.OnlineABFT` protector.
* :class:`DistributedStencilRunner` — drives all ranks in lock-step:
  every iteration each rank posts its boundary strips, receives its
  neighbours' strips, assembles its ghost-padded block, sweeps it and
  verifies it locally. No global reduction or cross-rank checksum is
  ever needed — the property the paper calls "intrinsically parallel".

The simulation is sequential under the hood (ranks are stepped in a
loop), but all inter-rank data flows through explicit messages, so the
communication structure matches a 1D-decomposed MPI stencil code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.online import OnlineABFT
from repro.core.protector import StepReport
from repro.parallel.decomposition import partition_extent
from repro.parallel.halo import boundary_strip, stack_with_halos, synthesize_ghost
from repro.stencil.boundary import BoundarySpec
from repro.stencil.grid import GridBase
from repro.stencil.shift import pad_array
from repro.stencil.spec import StencilSpec
from repro.stencil.sweep import sweep_padded

__all__ = ["SimChannel", "SimRank", "DistributedStencilRunner"]

#: Axis along which the domain is distributed across ranks.
DISTRIBUTED_AXIS = 0


class SimChannel:
    """In-memory point-to-point message mailbox.

    Messages are addressed by ``(source, destination, tag)`` and consumed
    in FIFO order per address. Payload arrays are copied on send so the
    sender cannot mutate data already "on the wire".
    """

    def __init__(self) -> None:
        self._mailboxes: Dict[Tuple[int, int, str], List[np.ndarray]] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    def send(self, source: int, dest: int, tag: str, payload: np.ndarray) -> None:
        key = (int(source), int(dest), str(tag))
        self._mailboxes.setdefault(key, []).append(np.array(payload, copy=True))
        self.messages_sent += 1
        self.bytes_sent += int(np.asarray(payload).nbytes)

    def recv(self, source: int, dest: int, tag: str) -> np.ndarray:
        key = (int(source), int(dest), str(tag))
        queue = self._mailboxes.get(key)
        if not queue:
            raise RuntimeError(
                f"no message from rank {source} to rank {dest} with tag {tag!r}"
            )
        return queue.pop(0)

    def pending(self) -> int:
        """Number of messages posted but not yet received."""
        return sum(len(q) for q in self._mailboxes.values())


@dataclass
class SimRank:
    """One simulated rank: its block, protector and neighbour links."""

    rank: int
    interior: np.ndarray
    constant: Optional[np.ndarray]
    protector: Optional[OnlineABFT]
    lo_neighbor: Optional[int]
    hi_neighbor: Optional[int]
    global_offset: int
    reports: List[StepReport] = field(default_factory=list)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.interior.shape


class DistributedStencilRunner:
    """Lock-step driver for a 1D rank decomposition with halo exchange.

    Parameters
    ----------
    grid:
        The global problem definition; its current state is scattered
        across the ranks at construction time.
    n_ranks:
        Number of simulated ranks; the domain is block-distributed along
        axis 0.
    protect:
        Protect every rank's block with its own OnlineABFT instance.
    abft_kwargs:
        Extra keyword arguments for each rank's protector.
    """

    def __init__(
        self,
        grid: GridBase,
        n_ranks: int = 4,
        protect: bool = True,
        **abft_kwargs,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.spec: StencilSpec = grid.spec
        self.boundary: BoundarySpec = grid.boundary
        self.radius = grid.spec.radius()
        self.dtype = grid.dtype
        self.global_shape = grid.shape
        self.iteration = grid.iteration
        self.channel = SimChannel()
        self.n_ranks = int(n_ranks)

        axis_bc = self.boundary.axis(DISTRIBUTED_AXIS)
        bounds = partition_extent(grid.shape[DISTRIBUTED_AXIS], self.n_ranks)
        self.ranks: List[SimRank] = []
        for r, (start, stop) in enumerate(bounds):
            sl = [slice(None)] * grid.ndim
            sl[DISTRIBUTED_AXIS] = slice(start, stop)
            block = np.array(grid.u[tuple(sl)], copy=True)
            const = None
            if grid.constant is not None:
                const = np.array(grid.constant[tuple(sl)], copy=True)
            if axis_bc.is_periodic:
                lo = (r - 1) % self.n_ranks
                hi = (r + 1) % self.n_ranks
            else:
                lo = r - 1 if r > 0 else None
                hi = r + 1 if r < self.n_ranks - 1 else None
            protector = None
            if protect:
                protector = OnlineABFT(
                    self.spec,
                    self.boundary,
                    block.shape,
                    dtype=self.dtype,
                    constant=const,
                    **abft_kwargs,
                )
            self.ranks.append(
                SimRank(
                    rank=r,
                    interior=block,
                    constant=const,
                    protector=protector,
                    lo_neighbor=lo,
                    hi_neighbor=hi,
                    global_offset=start,
                )
            )

    # -- halo exchange -------------------------------------------------------------
    def _post_halos(self) -> None:
        width = self.radius[DISTRIBUTED_AXIS]
        if width == 0:
            return
        for rank in self.ranks:
            if rank.lo_neighbor is not None:
                strip = boundary_strip(rank.interior, DISTRIBUTED_AXIS, "low", width)
                self.channel.send(rank.rank, rank.lo_neighbor, "to_hi", strip)
            if rank.hi_neighbor is not None:
                strip = boundary_strip(rank.interior, DISTRIBUTED_AXIS, "high", width)
                self.channel.send(rank.rank, rank.hi_neighbor, "to_lo", strip)

    def _assemble_padded(self, rank: SimRank) -> np.ndarray:
        """Build the rank's ghost-padded block from halo messages and BCs."""
        width = self.radius[DISTRIBUTED_AXIS]
        axis_bc = self.boundary.axis(DISTRIBUTED_AXIS)
        if width > 0:
            if rank.lo_neighbor is not None:
                lo_ghost = self.channel.recv(rank.lo_neighbor, rank.rank, "to_lo")
            else:
                lo_ghost = synthesize_ghost(
                    rank.interior, DISTRIBUTED_AXIS, "low", width, axis_bc
                )
            if rank.hi_neighbor is not None:
                hi_ghost = self.channel.recv(rank.hi_neighbor, rank.rank, "to_hi")
            else:
                hi_ghost = synthesize_ghost(
                    rank.interior, DISTRIBUTED_AXIS, "high", width, axis_bc
                )
            extended = stack_with_halos(
                lo_ghost, rank.interior, hi_ghost, DISTRIBUTED_AXIS
            )
        else:
            extended = rank.interior
        # Remaining axes still need their closed-boundary ghost cells; the
        # distributed axis is already extended, so its pad width is zero.
        pad_radius = list(self.radius)
        pad_radius[DISTRIBUTED_AXIS] = 0
        return pad_array(extended, tuple(pad_radius), self.boundary)

    # -- stepping --------------------------------------------------------------------
    def step(self, inject=None) -> List[StepReport]:
        """One distributed sweep: exchange halos, sweep, verify per rank."""
        self._post_halos()
        padded_blocks = {rank.rank: self._assemble_padded(rank) for rank in self.ranks}
        self.iteration += 1

        reports: List[StepReport] = []
        for rank in self.ranks:
            padded = padded_blocks[rank.rank]
            new_block = sweep_padded(
                padded, self.spec, self.radius, rank.shape, constant=rank.constant
            )
            rank.interior = new_block
            if inject is not None:
                inject(self, self.iteration, rank)
            if rank.protector is not None:
                report = rank.protector.process(rank.interior, padded, self.iteration)
            else:
                report = StepReport(iteration=self.iteration, detection_performed=False)
            rank.reports.append(report)
            reports.append(report)
        return reports

    def run(self, iterations: int, inject=None) -> List[StepReport]:
        """Advance ``iterations`` distributed sweeps."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        all_reports: List[StepReport] = []
        for _ in range(iterations):
            all_reports.extend(self.step(inject=inject))
        return all_reports

    # -- gather / bookkeeping -----------------------------------------------------------
    def gather(self) -> np.ndarray:
        """Assemble the global domain from all rank blocks."""
        return np.concatenate(
            [rank.interior for rank in self.ranks], axis=DISTRIBUTED_AXIS
        )

    def total_detected(self) -> int:
        return sum(
            r.protector.total_detections for r in self.ranks if r.protector is not None
        )

    def total_corrected(self) -> int:
        return sum(
            r.protector.total_corrections for r in self.ranks if r.protector is not None
        )

    def rank_of_global_index(self, index) -> Tuple[int, Tuple[int, ...]]:
        """Map a global domain index to ``(rank, local index)``."""
        index = tuple(int(i) for i in index)
        pos = index[DISTRIBUTED_AXIS]
        for rank in self.ranks:
            size = rank.shape[DISTRIBUTED_AXIS]
            if rank.global_offset <= pos < rank.global_offset + size:
                local = list(index)
                local[DISTRIBUTED_AXIS] = pos - rank.global_offset
                return rank.rank, tuple(local)
        raise ValueError(f"index {index} outside the global domain")
