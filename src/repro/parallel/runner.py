"""Shared-memory tiled runner with per-tile ABFT protection.

The runner splits the global domain into tiles, sweeps every tile from a
ghost-padded view of the previous global state (serially or on a thread
pool) and lets each tile's own :class:`~repro.core.online.OnlineABFT`
instance verify and correct its block independently — reproducing the
paper's "apply the scheme within each thread, no extra synchronisation
or communication" design (Sections 1 and 5.1).

Corrections write straight into the tile's view of the global array, so
a corrected tile is immediately consistent for the next iteration's halo
reads by its neighbours.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.backends import get_backend
from repro.backends.registry import BackendLike
from repro.core.online import OnlineABFT
from repro.core.protector import InjectHook, StepReport
from repro.parallel.decomposition import TileBox, decompose, decompose_layers
from repro.parallel.executor import SerialExecutor
from repro.parallel.halo import padded_tile_view, tile_constant
from repro.stencil.grid import GridBase
from repro.stencil.shift import pad_array

__all__ = ["TiledStencilRunner"]

#: Builds a protector for one tile: ``factory(box, grid) -> OnlineABFT | None``.
TileProtectorFactory = Callable[[TileBox, GridBase], Optional[OnlineABFT]]


class TiledStencilRunner:
    """Advance a grid tile by tile, each tile protected independently.

    Parameters
    ----------
    grid:
        The global domain (its ``spec``/``boundary``/``constant`` drive
        every tile's sweep).
    parts:
        Tiles per axis, e.g. ``(2, 2)`` for a 2x2 tiling of a 2D domain.
        For 3D domains ``parts="layers"`` assigns one tile per z-layer,
        the paper's OpenMP mapping.
    protector_factory:
        Callable building one protector per tile; ``None`` runs the tiles
        unprotected. Use :meth:`with_online_abft` for the common case.
    executor:
        Tile executor (:class:`SerialExecutor` by default, or a
        :class:`~repro.parallel.executor.ThreadPoolTileExecutor`).
    backend:
        Compute backend executing the per-tile sweeps (registry name or
        instance; ``None`` follows the grid's backend). Protected tiles
        are swept with the backend's fused sweep+checksum primitive, so
        each tile's verified checksum is produced by its own sweep —
        unless a fault-injection hook is active, in which case checksums
        are recomputed after injection as the paper's semantics require.
    """

    def __init__(
        self,
        grid: GridBase,
        parts: Sequence[int] | str = (2, 2),
        protector_factory: Optional[TileProtectorFactory] = None,
        executor=None,
        backend: BackendLike = None,
    ) -> None:
        self.grid = grid
        if isinstance(parts, str):
            if parts != "layers":
                raise ValueError(f"unknown decomposition {parts!r}")
            self.boxes = decompose_layers(grid.shape)
        else:
            self.boxes = decompose(grid.shape, parts)
        self.executor = executor if executor is not None else SerialExecutor()
        self.backend = None if backend is None else get_backend(backend)
        self.protectors: Dict[tuple, Optional[OnlineABFT]] = {}
        if protector_factory is not None:
            for box in self.boxes:
                self.protectors[box.index] = protector_factory(box, grid)
        else:
            for box in self.boxes:
                self.protectors[box.index] = None
        self.radius = grid.spec.radius()

    # -- constructors ------------------------------------------------------------
    @classmethod
    def with_online_abft(
        cls,
        grid: GridBase,
        parts: Sequence[int] | str = (2, 2),
        executor=None,
        backend: BackendLike = None,
        **abft_kwargs,
    ) -> "TiledStencilRunner":
        """A runner whose every tile is protected by its own OnlineABFT."""

        def factory(box: TileBox, g: GridBase) -> OnlineABFT:
            return OnlineABFT(
                g.spec,
                g.boundary,
                box.shape,
                dtype=g.dtype,
                constant=tile_constant(g.constant, box),
                backend=backend,
                **abft_kwargs,
            )

        return cls(
            grid, parts, protector_factory=factory, executor=executor, backend=backend
        )

    # -- stepping ------------------------------------------------------------------
    @property
    def n_tiles(self) -> int:
        return len(self.boxes)

    def step(self, inject: Optional[InjectHook] = None) -> List[StepReport]:
        """One global sweep: per-tile sweeps, then per-tile verification.

        Returns one report per tile (empty report for unprotected tiles).
        """
        grid = self.grid
        be = self.backend if self.backend is not None else grid.backend
        padded_global = pad_array(grid.u, self.radius, grid.boundary)
        new_global = np.empty_like(grid.u)
        tile_padded: Dict[tuple, np.ndarray] = {}
        tile_checksums: Dict[tuple, Optional[dict]] = {}
        # With an injection hook active, checksums fused into the sweep
        # would predate the injected fault and mask it — fall back to
        # post-injection checksum computation inside process().
        fused = inject is None

        def sweep_tile(box: TileBox):
            ptile = padded_tile_view(padded_global, box, self.radius)
            const = tile_constant(grid.constant, box)
            protector = self.protectors[box.index]
            if fused and protector is not None:
                new_tile, checksums = be.sweep_with_checksums(
                    ptile,
                    grid.spec,
                    self.radius,
                    box.shape,
                    protector.verify_axes(),
                    constant=const,
                    checksum_dtype=protector.checksum_dtype,
                )
            else:
                new_tile = be.sweep_padded(
                    ptile, grid.spec, self.radius, box.shape, constant=const
                )
                checksums = None
            return box, ptile, new_tile, checksums

        for box, ptile, new_tile, checksums in self.executor.map(
            sweep_tile, self.boxes
        ):
            new_global[box.slices] = new_tile
            tile_padded[box.index] = ptile
            tile_checksums[box.index] = checksums

        # Commit the new step on the grid (same double-buffer swap as
        # Grid.step; per-tile checksums live in tile_checksums, not on
        # the grid).
        grid._commit(padded_global, new_global, None)

        # Fault injection targets the freshly swept global domain, matching
        # the single-grid protectors' injection point.
        if inject is not None:
            inject(grid, grid.iteration)

        reports: List[StepReport] = []
        for box in self.boxes:
            protector = self.protectors[box.index]
            if protector is None:
                reports.append(
                    StepReport(iteration=grid.iteration, detection_performed=False)
                )
                continue
            tile_view = grid.u[box.slices]
            report = protector.process(
                tile_view,
                tile_padded[box.index],
                grid.iteration,
                precomputed_checksums=tile_checksums[box.index],
            )
            reports.append(report)
        return reports

    def run(self, iterations: int, inject: Optional[InjectHook] = None) -> List[StepReport]:
        """Advance ``iterations`` sweeps; returns the flat list of tile reports."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        all_reports: List[StepReport] = []
        for _ in range(iterations):
            all_reports.extend(self.step(inject=inject))
        return all_reports

    # -- bookkeeping -----------------------------------------------------------------
    def total_detected(self) -> int:
        return sum(
            p.total_detections for p in self.protectors.values() if p is not None
        )

    def total_corrected(self) -> int:
        return sum(
            p.total_corrections for p in self.protectors.values() if p is not None
        )

    def tile_of(self, point: Sequence[int]) -> TileBox:
        """The tile containing a global domain index."""
        for box in self.boxes:
            if box.contains(point):
                return box
        raise ValueError(f"point {tuple(point)} is outside the domain")
