"""Shared-memory tiled runner with per-tile ABFT protection.

The runner splits the global domain into tiles, sweeps every tile from a
ghost-padded view of the previous global state and lets each tile's own
:class:`~repro.core.online.OnlineABFT` instance verify and correct its
block independently — reproducing the paper's "apply the scheme within
each thread, no extra synchronisation or communication" design
(Sections 1 and 5.1).

Data movement follows the zero-copy halo pipeline of the double-buffered
grids: every step refreshes the ghost cells of the grid's persistent
front buffer in place, each tile sweeps a halo-extended *view* of it and
writes its new interior directly into the tile's slice of the back
buffer, and the pair swaps.  No full-domain array is allocated per
iteration on any executor:

* **serial / threads** — tiles are swept by closures over the shared
  buffers (NumPy releases the GIL inside the kernels, so threads overlap
  on multi-core machines);
* **process** — the buffer pair is migrated into
  ``multiprocessing.shared_memory`` once, worker processes attach it by
  name and sweep their tile slices in place, and only the per-tile fused
  checksum vectors are pickled back (:mod:`repro.parallel.shm`); the
  per-tile protectors then reduce those checksums in the parent.

Corrections write straight into the tile's view of the global array, so
a corrected tile is immediately consistent for the next iteration's halo
reads by its neighbours — in every executor mode, including across
process boundaries.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.backends import Backend, get_backend
from repro.backends.registry import BackendLike
from repro.core.online import OnlineABFT
from repro.core.protector import InjectHook, StepReport
from repro.parallel.decomposition import TileBox, decompose, decompose_layers
from repro.parallel.executor import make_executor
from repro.parallel.halo import padded_tile_view, tile_constant
from repro.parallel.shm import TileTask, share_array_copy
from repro.stencil.grid import GridBase
from repro.stencil.shift import interior_view

__all__ = ["TiledStencilRunner"]

#: Builds a protector for one tile: ``factory(box, grid) -> OnlineABFT | None``.
TileProtectorFactory = Callable[[TileBox, GridBase], Optional[OnlineABFT]]


class TiledStencilRunner:
    """Advance a grid tile by tile, each tile protected independently.

    Parameters
    ----------
    grid:
        The global domain (its ``spec``/``boundary``/``constant`` drive
        every tile's sweep).
    parts:
        Tiles per axis, e.g. ``(2, 2)`` for a 2x2 tiling of a 2D domain.
        For 3D domains ``parts="layers"`` assigns one tile per z-layer,
        the paper's OpenMP mapping.
    protector_factory:
        Callable building one protector per tile; ``None`` runs the tiles
        unprotected. Use :meth:`with_online_abft` for the common case.
    executor:
        Tile executor: a :class:`SerialExecutor`, a
        :class:`~repro.parallel.executor.ThreadPoolTileExecutor`, or a
        :class:`~repro.parallel.executor.ProcessPoolTileExecutor`
        (detected through its ``map_tiles`` capability, which switches
        the runner to shared-memory task dispatch).  ``None`` builds one
        through :func:`~repro.parallel.executor.make_executor`'s default
        chain (``--executor`` / ``REPRO_EXECUTOR``, else serial); an
        executor the runner built itself is shut down by
        :meth:`shutdown`, while a caller-provided executor stays alive
        for reuse and remains the caller's to release.
    backend:
        Compute backend executing the per-tile sweeps (registry name or
        instance; ``None`` follows the grid's backend). Protected tiles
        are swept with the backend's fused sweep+checksum primitive, so
        each tile's verified checksum is produced by its own sweep —
        unless a fault-injection hook is active, in which case checksums
        are recomputed after injection as the paper's semantics require.
        The process executor resolves the backend *by name* inside each
        worker, so it requires a registered backend.
    block_steps:
        Temporal blocking factor for :meth:`run`.  Unprotected runners
        advance ``block_steps`` sweeps per chunk through the grid's
        fused k-step kernel (:meth:`~repro.stencil.grid.GridBase.multi_step`)
        instead of dispatching per-tile sweeps every iteration; any
        protected tile caps the effective factor to 1 because
        :class:`~repro.core.online.OnlineABFT` must verify every step
        (see :attr:`effective_block_steps` / :attr:`block_cap_reason`).
        Injection hooks always force the single-step path so faults land
        on exact iteration boundaries.
    """

    def __init__(
        self,
        grid: GridBase,
        parts: Sequence[int] | str = (2, 2),
        protector_factory: Optional[TileProtectorFactory] = None,
        executor=None,
        backend: BackendLike = None,
        block_steps: int = 1,
    ) -> None:
        self.grid = grid
        if isinstance(parts, str):
            if parts != "layers":
                raise ValueError(f"unknown decomposition {parts!r}")
            self.boxes = decompose_layers(grid.shape)
        else:
            self.boxes = decompose(grid.shape, parts)
        self._owns_executor = executor is None
        self.executor = executor if executor is not None else make_executor(None)
        self.backend = None if backend is None else get_backend(backend)
        self.protectors: Dict[tuple, Optional[OnlineABFT]] = {}
        if protector_factory is not None:
            for box in self.boxes:
                self.protectors[box.index] = protector_factory(box, grid)
        else:
            for box in self.boxes:
                self.protectors[box.index] = None
        self.radius = grid.spec.radius()
        block_steps = int(block_steps)
        if block_steps < 1:
            raise ValueError("block_steps must be >= 1")
        self.block_steps = block_steps
        self.block_cap_reason: Optional[str] = None
        if block_steps > 1 and any(
            p is not None for p in self.protectors.values()
        ):
            self.block_cap_reason = (
                "per-tile OnlineABFT verifies every step; temporal blocking"
                " would skip its per-iteration detection points"
            )
        self.effective_block_steps = (
            1 if self.block_cap_reason is not None else block_steps
        )
        self._const_shm = None
        self._const_name: Optional[str] = None
        # Compile-once warmup (no-op for the interpreted backends): a JIT
        # backend compiles — and writes to its on-disk cache — every
        # kernel this operator needs before the first step, so neither
        # the timed loop nor the pool's worker processes (which load the
        # cached artifacts instead of recompiling) pay the JIT cost
        # mid-run.
        warm_backend = self.backend if self.backend is not None else grid.backend
        warm_backend.warmup(
            grid.spec,
            grid.boundary,
            grid.dtype,
            radius=self.radius,
            block_steps=self.effective_block_steps,
        )

    # -- constructors ------------------------------------------------------------
    @classmethod
    def with_online_abft(
        cls,
        grid: GridBase,
        parts: Sequence[int] | str = (2, 2),
        executor=None,
        backend: BackendLike = None,
        block_steps: int = 1,
        **abft_kwargs,
    ) -> "TiledStencilRunner":
        """A runner whose every tile is protected by its own OnlineABFT.

        ``block_steps`` is accepted for interface symmetry but always
        capped to 1 (per-tile protection verifies every step); the cap
        reason is recorded on the returned runner.
        """

        def factory(box: TileBox, g: GridBase) -> OnlineABFT:
            return OnlineABFT(
                g.spec,
                g.boundary,
                box.shape,
                dtype=g.dtype,
                constant=tile_constant(g.constant, box),
                backend=backend,
                **abft_kwargs,
            )

        return cls(
            grid,
            parts,
            protector_factory=factory,
            executor=executor,
            backend=backend,
            block_steps=block_steps,
        )

    # -- shared-memory setup -------------------------------------------------------
    @property
    def uses_processes(self) -> bool:
        """Whether tile work is dispatched as shared-memory process tasks."""
        return hasattr(self.executor, "map_tiles")

    def _ensure_shared(self) -> None:
        """Migrate the grid (and constant) into shared memory, once."""
        if not self.grid.buffers.is_shared:
            self.grid.share_buffers()
        if self.grid.constant is not None and self._const_name is None:
            self._const_shm, self._const_name = share_array_copy(self.grid.constant)

    def shutdown(self) -> None:
        """Release the resources this runner created.

        Shuts down the executor only if the runner built it
        (``executor=None``); a caller-provided executor may be shared
        with other runners and stays alive.  Shared-memory blocks the
        runner migrated (grid buffers, constant) are always released —
        the grid keeps its contents on the heap.
        """
        if self._owns_executor and hasattr(self.executor, "shutdown"):
            self.executor.shutdown()
        if self._const_shm is not None:
            try:
                self._const_shm.close()
                self._const_shm.unlink()
            except (BufferError, FileNotFoundError, OSError):
                pass
            self._const_shm = None
            self._const_name = None
        self.grid.close_buffers()

    def __enter__(self) -> "TiledStencilRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- stepping ------------------------------------------------------------------
    @property
    def n_tiles(self) -> int:
        return len(self.boxes)

    def _sweep_tiles_inprocess(
        self,
        be: Backend,
        src: np.ndarray,
        dst_interior: np.ndarray,
        fused: bool,
    ) -> Dict[tuple, Optional[dict]]:
        """Serial/thread path: closures sweep shared views in place."""
        grid = self.grid

        def sweep_tile(box: TileBox):
            ptile = padded_tile_view(src, box, self.radius)
            const = tile_constant(grid.constant, box)
            tile_out = dst_interior[box.slices]
            protector = self.protectors[box.index]
            if fused and protector is not None:
                new_tile, checksums = be.sweep_with_checksums(
                    ptile,
                    grid.spec,
                    self.radius,
                    box.shape,
                    protector.verify_axes(),
                    constant=const,
                    out=tile_out,
                    checksum_dtype=protector.checksum_dtype,
                )
            else:
                new_tile = be.sweep_padded(
                    ptile, grid.spec, self.radius, box.shape,
                    constant=const, out=tile_out,
                )
                checksums = None
            if new_tile is not tile_out:
                # Backend ignored ``out``: land the result in the buffer.
                tile_out[...] = new_tile
            return box.index, checksums

        return dict(self.executor.map(sweep_tile, self.boxes))

    def _sweep_tiles_processes(
        self, be: Backend, fused: bool
    ) -> Dict[tuple, Optional[dict]]:
        """Process path: ship shared-memory tile tasks, collect checksums."""
        grid = self.grid
        src_name, dst_name = grid.buffers.shm_names
        tasks = []
        for box in self.boxes:
            protector = self.protectors[box.index]
            axes = None
            cs_dtype = None
            if fused and protector is not None:
                axes = tuple(protector.verify_axes())
                if protector.checksum_dtype is not None:
                    cs_dtype = np.dtype(protector.checksum_dtype).str
            tasks.append(
                TileTask(
                    src_name=src_name,
                    dst_name=dst_name,
                    padded_shape=tuple(grid.buffers.padded_shape),
                    dtype_str=grid.dtype.str,
                    radius=tuple(self.radius),
                    spec=grid.spec,
                    box=box,
                    backend_name=be.name,
                    axes=axes,
                    checksum_dtype_str=cs_dtype,
                    const_name=self._const_name,
                    interior_shape=tuple(grid.shape),
                )
            )
        return dict(self.executor.map_tiles(tasks))

    def step(self, inject: Optional[InjectHook] = None) -> List[StepReport]:
        """One global sweep: per-tile sweeps, then per-tile verification.

        Returns one report per tile (empty report for unprotected tiles).
        """
        grid = self.grid
        be = self.backend if self.backend is not None else grid.backend
        # With an injection hook active, checksums fused into the sweep
        # would predate the injected fault and mask it — fall back to
        # post-injection checksum computation inside process().
        fused = inject is None

        if self.uses_processes:
            self._ensure_shared()
        src = grid.padded_current()  # persistent front buffer, ghosts refreshed
        if self.uses_processes:
            tile_checksums = self._sweep_tiles_processes(be, fused)
        else:
            dst_interior = interior_view(grid.back_padded, self.radius)
            tile_checksums = self._sweep_tiles_inprocess(
                be, src, dst_interior, fused
            )

        # Commit the new step on the grid (the buffer-pair swap shared
        # with Grid.step; per-tile checksums live in tile_checksums, not
        # on the grid).
        grid._commit(src, None)

        # Fault injection targets the freshly swept global domain, matching
        # the single-grid protectors' injection point.
        if inject is not None:
            inject(grid, grid.iteration)

        reports: List[StepReport] = []
        for box in self.boxes:
            protector = self.protectors[box.index]
            if protector is None:
                reports.append(
                    StepReport(iteration=grid.iteration, detection_performed=False)
                )
                continue
            tile_view = grid.u[box.slices]
            report = protector.process(
                tile_view,
                padded_tile_view(src, box, self.radius),
                grid.iteration,
                precomputed_checksums=tile_checksums[box.index],
            )
            reports.append(report)
        return reports

    def _blocked_step(self, k: int) -> List[StepReport]:
        """Advance ``k`` fused sweeps through the grid's k-step kernel.

        Only reachable when every tile is unprotected, so there is no
        per-iteration detection point to preserve; the result is
        bit-identical to ``k`` tiled single steps (the tiles partition
        the same sweep).  One ``detection_performed=False`` report per
        tile per iteration keeps the report shape of the stepped path.
        """
        grid = self.grid
        be = self.backend if self.backend is not None else grid.backend
        grid.multi_step(k, backend=be)
        reports: List[StepReport] = []
        for it in range(grid.iteration - k + 1, grid.iteration + 1):
            for _ in self.boxes:
                reports.append(
                    StepReport(iteration=it, detection_performed=False)
                )
        return reports

    def run(self, iterations: int, inject: Optional[InjectHook] = None) -> List[StepReport]:
        """Advance ``iterations`` sweeps; returns the flat list of tile reports.

        With ``block_steps > 1`` (and no protected tiles, no injection
        hook) the loop advances in fused k-step chunks; otherwise it
        falls back to per-iteration :meth:`step`.
        """
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        all_reports: List[StepReport] = []
        k = self.effective_block_steps if inject is None else 1
        remaining = iterations
        while remaining > 0:
            if k <= 1 or remaining == 1:
                all_reports.extend(self.step(inject=inject))
                remaining -= 1
            else:
                chunk = min(k, remaining)
                all_reports.extend(self._blocked_step(chunk))
                remaining -= chunk
        return all_reports

    # -- bookkeeping -----------------------------------------------------------------
    def total_detected(self) -> int:
        return sum(
            p.total_detections for p in self.protectors.values() if p is not None
        )

    def total_corrected(self) -> int:
        return sum(
            p.total_corrections for p in self.protectors.values() if p is not None
        )

    def tile_of(self, point: Sequence[int]) -> TileBox:
        """The tile containing a global domain index."""
        for box in self.boxes:
            if box.contains(point):
                return box
        raise ValueError(f"point {tuple(point)} is outside the domain")
