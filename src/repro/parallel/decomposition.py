"""Domain decomposition into tiles and layers.

The paper parallelises HotSpot3D by assigning one 2D layer of the 3D
domain to each OpenMP thread (Section 5.1) and notes that the ABFT
scheme can equally be applied per chunk/block of a larger domain. The
helpers here produce both decompositions: a Cartesian tiling of the
first two axes and a per-layer split of the third.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["TileBox", "partition_extent", "decompose", "decompose_layers"]


def partition_extent(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous, near-equal intervals.

    The first ``n % parts`` intervals are one element longer, which is
    the usual block distribution of parallel runtimes.

    >>> partition_extent(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if n < parts:
        raise ValueError(f"cannot split extent {n} into {parts} non-empty parts")
    base, extra = divmod(n, parts)
    bounds = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


@dataclass(frozen=True)
class TileBox:
    """A rectangular tile of the global domain.

    Attributes
    ----------
    index:
        Cartesian tile coordinates (one integer per decomposed axis).
    slices:
        Slices selecting the tile's interior in the global domain
        (one slice per domain axis).
    """

    index: Tuple[int, ...]
    slices: Tuple[slice, ...]

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(s.stop - s.start for s in self.slices)

    @property
    def starts(self) -> Tuple[int, ...]:
        return tuple(s.start for s in self.slices)

    def contains(self, point: Sequence[int]) -> bool:
        """Whether a global domain index falls inside this tile."""
        if len(point) != len(self.slices):
            return False
        return all(s.start <= int(p) < s.stop for p, s in zip(point, self.slices))

    def to_local(self, point: Sequence[int]) -> Tuple[int, ...]:
        """Convert a global domain index into tile-local coordinates."""
        if not self.contains(point):
            raise ValueError(f"point {tuple(point)} is not inside tile {self.index}")
        return tuple(int(p) - s.start for p, s in zip(point, self.slices))


def decompose(shape: Sequence[int], parts: Sequence[int]) -> List[TileBox]:
    """Cartesian decomposition of a domain into ``prod(parts)`` tiles.

    Parameters
    ----------
    shape:
        Global domain shape.
    parts:
        Number of tiles along each axis. Axes not listed (e.g. the layer
        axis of a 3D domain when only two values are given) are not
        split.
    """
    shape = tuple(int(n) for n in shape)
    parts = tuple(int(p) for p in parts)
    if len(parts) > len(shape):
        raise ValueError(
            f"got {len(parts)} part counts for a {len(shape)}-dimensional domain"
        )
    parts = parts + (1,) * (len(shape) - len(parts))
    per_axis = [partition_extent(n, p) for n, p in zip(shape, parts)]

    boxes: List[TileBox] = []

    def _build(axis: int, index: Tuple[int, ...], slices: Tuple[slice, ...]) -> None:
        if axis == len(shape):
            boxes.append(TileBox(index=index, slices=slices))
            return
        for i, (start, stop) in enumerate(per_axis[axis]):
            _build(axis + 1, index + (i,), slices + (slice(start, stop),))

    _build(0, (), ())
    return boxes


def decompose_layers(shape: Sequence[int]) -> List[TileBox]:
    """One tile per z-layer of a 3D domain (the paper's OpenMP mapping)."""
    shape = tuple(int(n) for n in shape)
    if len(shape) != 3:
        raise ValueError(f"decompose_layers expects a 3D shape, got {shape}")
    nx, ny, nz = shape
    return [
        TileBox(index=(z,), slices=(slice(0, nx), slice(0, ny), slice(z, z + 1)))
        for z in range(nz)
    ]
