"""Parallel execution of protected stencil sweeps.

The paper stresses that the ABFT scheme is "intrinsically parallel":
checksum computation, interpolation, detection and correction are all
performed *independently* within each thread/process/tile, so protecting
a parallel stencil run requires no extra synchronisation or
communication beyond the halo exchange the stencil needs anyway.

This subpackage exercises that property in two settings:

``decomposition`` / ``executor`` / ``runner`` / ``shm``
    Shared-memory tiling: the global domain is split into tiles, each
    tile is swept (serially, on a thread pool, or on a process pool
    attached to the domain through ``multiprocessing.shared_memory``)
    from a ghost-padded view of the global buffer pair, writes its new
    interior in place, and is verified by its own independent
    :class:`~repro.core.online.OnlineABFT` instance.

``simmpi``
    A small simulated message-passing layer (ranks, Send/Recv
    mailboxes) and a distributed runner in which each rank owns a
    persistent padded buffer pair for its contiguous block of the
    domain, receives halo strips straight into its front buffer's ghost
    slabs, sweeps through the backend's fused step primitive and runs
    its own ABFT verification — the distributed-memory setting of the
    paper, without requiring MPI and without any full-block allocation
    per iteration.
"""

from repro.parallel.decomposition import TileBox, partition_extent, decompose, decompose_layers
from repro.parallel.executor import (
    ProcessPoolTileExecutor,
    SerialExecutor,
    ThreadPoolTileExecutor,
    available_executors,
    default_executor_kind,
    make_executor,
    resolve_workers,
    set_default_executor,
)
from repro.parallel.halo import padded_tile_view, tile_constant
from repro.parallel.runner import TiledStencilRunner
from repro.parallel.simmpi import SimChannel, SimRank, DistributedStencilRunner

__all__ = [
    "TileBox",
    "partition_extent",
    "decompose",
    "decompose_layers",
    "SerialExecutor",
    "ThreadPoolTileExecutor",
    "ProcessPoolTileExecutor",
    "make_executor",
    "available_executors",
    "default_executor_kind",
    "set_default_executor",
    "resolve_workers",
    "padded_tile_view",
    "tile_constant",
    "TiledStencilRunner",
    "SimChannel",
    "SimRank",
    "DistributedStencilRunner",
]
