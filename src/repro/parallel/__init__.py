"""Parallel execution of protected stencil sweeps.

The paper stresses that the ABFT scheme is "intrinsically parallel":
checksum computation, interpolation, detection and correction are all
performed *independently* within each thread/process/tile, so protecting
a parallel stencil run requires no extra synchronisation or
communication beyond the halo exchange the stencil needs anyway.

This subpackage exercises that property in two settings:

``decomposition`` / ``executor`` / ``runner``
    Shared-memory tiling: the global domain is split into tiles, each
    tile is swept (serially or on a thread pool) from a ghost-padded
    view of the global domain and verified by its own independent
    :class:`~repro.core.online.OnlineABFT` instance.

``simmpi``
    A small simulated message-passing layer (ranks, Send/Recv
    mailboxes) and a distributed runner in which each rank owns a
    contiguous block of the domain, exchanges halo strips with its
    neighbours explicitly, and runs its own ABFT verification — the
    distributed-memory setting of the paper, without requiring MPI.
"""

from repro.parallel.decomposition import TileBox, partition_extent, decompose, decompose_layers
from repro.parallel.executor import SerialExecutor, ThreadPoolTileExecutor, make_executor
from repro.parallel.halo import padded_tile_view, tile_constant
from repro.parallel.runner import TiledStencilRunner
from repro.parallel.simmpi import SimChannel, SimRank, DistributedStencilRunner

__all__ = [
    "TileBox",
    "partition_extent",
    "decompose",
    "decompose_layers",
    "SerialExecutor",
    "ThreadPoolTileExecutor",
    "make_executor",
    "padded_tile_view",
    "tile_constant",
    "TiledStencilRunner",
    "SimChannel",
    "SimRank",
    "DistributedStencilRunner",
]
