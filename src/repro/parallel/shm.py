"""Shared-memory tile tasks for the process-pool executor.

The process-pool tile executor escapes the GIL by running each tile's
sweep in a separate OS process.  Shipping the domain to the workers by
pickle would reintroduce the full-domain copies the double-buffered
pipeline just removed, so instead the *global* padded buffer pair lives
in ``multiprocessing.shared_memory`` (see
:meth:`repro.stencil.doublebuffer.DoubleBufferedGrid.share`) and a task
carries only **names and indices**: the shared block names, the tile's
slice bounds, the stencil spec and the checksum axes.  Workers attach
the blocks once (cached per process), sweep their tile slice of the
shared back buffer in place, and return nothing but the tile's fused
checksum vectors — a few KiB — which the parent then feeds to the
per-tile ABFT protectors.

Every function here is module-level so tasks pickle under both the
``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

import numpy as np

__all__ = [
    "TileTask",
    "run_tile_task",
    "run_tile_batch",
    "share_array_copy",
    "detach_all",
    "worker_init",
]

#: Per-process cache of attached shared-memory blocks: name -> SharedMemory.
_ATTACHED: Dict[str, object] = {}


def _attach(name: str) -> "np.ndarray":
    """Attach a shared-memory block by name (cached per process)."""
    from multiprocessing import shared_memory

    shm = _ATTACHED.get(name)
    if shm is None:
        # Workers inherit the parent's resource tracker (fork and spawn
        # both pass the tracker fd down), so the attach-time re-register
        # the stdlib performs is an idempotent set-add there — the block
        # stays owned by the creating process, which unlinks on shutdown.
        shm = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = shm
    return shm


def attach_array(name: str, shape: Tuple[int, ...], dtype_str: str) -> np.ndarray:
    """Numpy view of an attached shared-memory block."""
    shm = _attach(name)
    return np.ndarray(tuple(shape), dtype=np.dtype(dtype_str), buffer=shm.buf)


def detach_all() -> None:
    """Close every cached attachment (runs atexit in each worker)."""
    for shm in _ATTACHED.values():
        try:
            shm.close()
        except (BufferError, OSError):
            pass
    _ATTACHED.clear()


def worker_init() -> None:
    """Pool initializer: detach cached blocks when the worker retires."""
    import atexit

    atexit.register(detach_all)


def share_array_copy(array: np.ndarray):
    """Copy ``array`` into a fresh shared-memory block.

    Returns ``(SharedMemory, name)``; the caller owns the block and must
    close+unlink it.  Used for per-run constants (e.g. a power map) that
    workers read but never write.
    """
    from multiprocessing import shared_memory

    array = np.ascontiguousarray(array)
    shm = shared_memory.SharedMemory(create=True, size=max(int(array.nbytes), 1))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array
    return shm, shm.name


class TileTask(NamedTuple):
    """Everything a worker needs to sweep one tile — no array payloads."""

    src_name: str                      #: shared block holding the padded step-t domain
    dst_name: str                      #: shared block the new interior is written into
    padded_shape: Tuple[int, ...]      #: shape of both padded blocks
    dtype_str: str                     #: domain dtype (numpy dtype string)
    radius: Tuple[int, ...]            #: ghost width per axis
    spec: object                       #: the StencilSpec (small, picklable)
    box: object                        #: the TileBox (index + slices, picklable)
    backend_name: str                  #: registry name resolved inside the worker
    axes: Optional[Tuple[int, ...]]    #: checksum axes (None → unfused sweep)
    checksum_dtype_str: Optional[str]  #: checksum accumulation dtype
    const_name: Optional[str]          #: shared block holding the constant term
    interior_shape: Tuple[int, ...]    #: global interior shape (for const slicing)


def run_tile_task(task: TileTask):
    """Sweep one tile of the shared domain; returns ``(index, checksums)``.

    The tile's ghost cells are a larger slice of the shared padded source
    (neighbour data and global boundary alike, through the same
    :func:`~repro.parallel.halo.padded_tile_view` helper as the
    thread-pool path), and the result lands directly in the shared back
    buffer — the only thing crossing the process boundary on the way
    back is the per-tile checksum map (or ``None`` for unfused sweeps).
    """
    from repro.backends import get_backend
    from repro.parallel.halo import padded_tile_view
    from repro.stencil.shift import interior_view

    src = attach_array(task.src_name, task.padded_shape, task.dtype_str)
    dst = attach_array(task.dst_name, task.padded_shape, task.dtype_str)
    radius = tuple(task.radius)
    box = task.box

    ptile = padded_tile_view(src, box, radius)
    tile_out = interior_view(dst, radius)[box.slices]

    const = None
    if task.const_name is not None:
        const = attach_array(
            task.const_name, task.interior_shape, task.dtype_str
        )[box.slices]

    backend = get_backend(task.backend_name)
    checksums = None
    if task.axes:
        cs_dtype = (
            None
            if task.checksum_dtype_str is None
            else np.dtype(task.checksum_dtype_str)
        )
        new, checksums = backend.sweep_with_checksums(
            ptile,
            task.spec,
            radius,
            box.shape,
            tuple(task.axes),
            constant=const,
            out=tile_out,
            checksum_dtype=cs_dtype,
        )
    else:
        new = backend.sweep_padded(
            ptile, task.spec, radius, box.shape, constant=const, out=tile_out
        )
    if new is not tile_out:
        # Backend ignored ``out`` (copy-based fallback): land the result.
        tile_out[...] = new
    return box.index, checksums


def run_tile_batch(tasks: Tuple[TileTask, ...]):
    """Sweep a whole batch of tiles in one worker task.

    Submitting one pool task per tile makes the per-task pickle +
    future + IPC round trip the dominant cost once tiles are cheap (a
    2x2 tiling dispatches four futures per step for sub-millisecond
    sweeps).  The executor therefore groups each worker's tiles into a
    single task: one submission per worker per step, with the same
    ``(tile_index, checksums)`` results returned as one list.
    """
    return [run_tile_task(task) for task in tasks]
